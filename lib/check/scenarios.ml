(* Checkable chaos scenarios for schedule exploration.

   Each scenario builds a fresh simulated world (kernel, app, servers),
   runs a melee of Byzantine clients — optionally under an armed fault
   plan — with the invariant oracle wired to every system call and a
   sampled stream of context switches, and finishes with a full oracle
   sweep (plus a differential-model verify when [diff] is set).  The
   returned string is a deterministic summary of everything observable
   (tallies, guard stats, fault trace digest): two runs with the same
   seed and schedule policy must produce identical summaries, which is
   what [Explore] digests.

   Failures are exceptions: [Oracle.Violation], [Refvm.Mismatch], a
   scenario's own end-state assertion, or anything a server let escape
   containment.  [Explore] catches them, captures the scheduler decision
   trace and shrinks it.

   The [racy] scenario is the deliberately buggy control: two sthreads
   increment a shared tagged counter, one of them yielding between its
   read and its write.  Under FIFO scheduling the window never overlaps;
   under seeded random/PCT schedules the lost update manifests and the
   end-state assertion fails — the mutation-style sanity check that the
   explorer actually catches schedule-dependent bugs. *)

module Kernel = Wedge_kernel.Kernel
module Rlimit = Wedge_kernel.Rlimit
module Cost_model = Wedge_sim.Cost_model
module Clock = Wedge_sim.Clock
module Stats = Wedge_sim.Stats
module Fiber = Wedge_sim.Fiber
module Fault_plan = Wedge_fault.Fault_plan
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Watchdog = Wedge_net.Watchdog
module Reactor = Wedge_sim.Reactor
module Byzantine = Wedge_net.Byzantine
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module W = Wedge_core.Wedge
module Supervisor = Wedge_core.Supervisor
module Shard = Wedge_net.Shard
module Prot = Wedge_kernel.Prot
module Synth = Wedge_crowbar.Synth

type t = {
  s_name : string;
  s_doc : string;
  s_run : policy:Fiber.policy -> diff:bool -> faults:bool -> seed:int -> string;
}

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Run [main] under [policy] with the oracle (and optionally the
   differential model) armed, then sweep.  [summarize] builds the
   deterministic outcome line from whatever the scenario observed.
   [extra_hook] (e.g. a watchdog sweep) is composed {e before} the
   oracle's sampled check, so invariants like [Watchdog.self_check] hold
   at every inspected switch; [clock] is threaded to the fiber scheduler
   so induced ["fiber.stall"] faults charge simulated time. *)
let checked ~kernel ?app ?sched_faults ?clock ?extra_hook ?on_idle ~policy ~diff main
    summarize =
  let oracle = Oracle.create kernel in
  (match app with Some a -> Oracle.set_app oracle a | None -> ());
  let refvm = if diff then Some (Refvm.create kernel) else None in
  Oracle.install_syscall_hook oracle;
  (match refvm with Some rv -> Refvm.arm rv | None -> ());
  let on_switch =
    let ohook = Oracle.hook oracle in
    match extra_hook with
    | None -> ohook
    | Some h ->
        fun () ->
          h ();
          ohook ()
  in
  Fun.protect
    ~finally:(fun () ->
      Oracle.remove_syscall_hook oracle;
      match refvm with Some rv -> Refvm.disarm rv | None -> ())
    (fun () ->
      Fiber.run ?faults:sched_faults ?clock ?on_idle ~policy ~on_switch (fun () ->
          main oracle);
      Oracle.check oracle;
      (match refvm with Some rv -> Refvm.verify rv | None -> ());
      Printf.sprintf "%s checks=%d diff_events=%s" (summarize ())
        (Oracle.checks_run oracle)
        (match refvm with Some rv -> string_of_int (Refvm.events rv) | None -> "-"))

let tally_to_string (t : Byzantine.tally) =
  Printf.sprintf "ok=%d refused=%d rejected=%d cut=%d err=%d" t.Byzantine.completed
    t.refused t.rejected t.cut t.errors

let guard_to_string (s : Guard.stats) =
  Printf.sprintf
    "admitted=%d busy=%d draining=%d timed_out=%d forced=%d shed=%d bopen=%d active=%d"
    s.Guard.s_admitted s.s_rejected_busy s.s_rejected_draining s.s_timed_out s.s_forced
    s.s_shed s.s_breaker_opened s.s_active

let plan_digest plan = Digest.to_hex (Digest.string (Fault_plan.trace plan))

(* Recovery epilogue for the storm scenarios: with the fault plan already
   disarmed, advance the clock past the breaker's cooling period and feed
   clean probe connections until the breaker closes — the scenario's own
   "system healed" assertion.  A worker quarantined by the storm makes
   the first probes fail and re-open the breaker; the clock advances each
   round, so the quarantine lifts and the loop converges.  The bound only
   trips when recovery is genuinely broken. *)
let heal_breaker ~what guard clock probe =
  let rec go tries =
    match Guard.breaker_state guard with
    | None | Some Guard.Closed -> tries
    | Some _ ->
        if tries >= 60 then
          raise (Oracle.Violation (what ^ ": breaker stuck open after the storm ended"))
        else begin
          Clock.charge clock 6_000;
          probe ();
          (* Outcomes reach the breaker when the serve fiber finishes. *)
          Fiber.wait_until
            ~what:(what ^ " probe settled")
            (fun () -> Guard.active guard = 0);
          go (tries + 1)
        end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* POP3: partitioned server under flood + faults + slow-loris          *)

let run_pop3 ~policy ~diff ~faults ~seed =
  let plan = Fault_plan.create ~seed () in
  if faults then begin
    Fault_plan.rule plan ~site:"chan.read" ~prob:0.03 [ Fault_plan.Drop; Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"chan.write" ~prob:0.03 [ Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"physmem.alloc" ~prob:0.002 [ Fault_plan.Enomem ]
  end;
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main_ctx = W.main_ctx app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:8 () in
  let guard =
    Guard.create ~clock:k.Kernel.clock ~header_deadline_ns:5_000 ~max_conns:4 ()
  in
  let t = Byzantine.tally () in
  let loris = Byzantine.tally () in
  let is_rejection s = contains s "-ERR busy" in
  let n_clients = 16 in
  checked ~kernel:k ~app ~policy ~diff
    (fun oracle ->
      Oracle.add_guard oracle ~name:"pop3.guard" guard;
      Fiber.spawn (fun () -> Wedge_pop3.Pop3_wedge.serve_loop main_ctx guard l);
      Fault_plan.arm plan;
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            if i mod 4 = 0 then
              Byzantine.half_close t l ~request:"USER alice\r\nQUIT\r\n" ~is_rejection
            else if i mod 7 = 0 then
              Byzantine.oversized t l ~size:2_000
                ~is_rejection:(fun s -> contains s "too long")
            else
              Byzantine.oneshot t l ~request:"USER alice\r\nPASS wonderland\r\nSTAT\r\nQUIT\r\n"
                ~is_rejection)
      done;
      Fiber.spawn (fun () ->
          Byzantine.slow_loris loris l ~clock:k.Kernel.clock ~step_ns:1_000
            ~request:"USER alice\r\nQUIT\r\n" ~is_rejection);
      Fiber.wait_until ~what:"pop3 melee resolved" (fun () ->
          Byzantine.total t = n_clients && Byzantine.total loris = 1);
      Fault_plan.disarm plan;
      Guard.drain guard l)
    (fun () ->
      Printf.sprintf "pop3 %s loris_cut=%d %s degraded=%d plan=%s" (tally_to_string t)
        loris.Byzantine.cut
        (guard_to_string (Guard.stats guard))
        (Stats.get k.Kernel.stats "pop3.degraded")
        (plan_digest plan))

(* ------------------------------------------------------------------ *)
(* HTTPD: TLS-terminating partitioned server, garbage + real clients   *)

let run_httpd ~policy ~diff ~faults ~seed =
  let plan = Fault_plan.create ~seed () in
  if faults then begin
    Fault_plan.rule plan ~site:"chan.read" ~prob:0.02 [ Fault_plan.Drop; Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"chan.write" ~prob:0.02 [ Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"physmem.alloc" ~prob:0.001 [ Fault_plan.Enomem ]
  end;
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed k in
  let app = env.Wedge_httpd.Httpd_env.app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:8 () in
  let guard = Guard.create ~max_conns:4 () in
  let t = Byzantine.tally () in
  let is_rejection s = contains s "503" in
  let served_bodies = ref 0 and client_errors = ref 0 in
  let n_garbage = 8 and n_tls = 2 in
  checked ~kernel:k ~app ~policy ~diff
    (fun oracle ->
      Oracle.add_guard oracle ~name:"httpd.guard" guard;
      Fiber.spawn (fun () ->
          Wedge_httpd.Httpd_simple.serve_loop ~max_request_bytes:4096 env guard l);
      Fault_plan.arm plan;
      for i = 1 to n_garbage do
        Fiber.spawn (fun () ->
            if i mod 3 = 0 then
              Byzantine.half_close t l ~request:"GET / HTTP/1.0\r\n\r\n" ~is_rejection
            else if i mod 5 = 0 then Byzantine.silent t l
            else
              (* Plaintext HTTP at a TLS endpoint: handshake garbage the
                 worker must contain. *)
              Byzantine.oneshot t l ~request:"GET /index.html HTTP/1.1\r\n\r\n" ~is_rejection)
      done;
      for i = 1 to n_tls do
        Fiber.spawn (fun () ->
            let rng = Drbg.create ~seed:(seed + i) in
            match Chan.connect l with
            | exception _ -> incr client_errors
            | ep -> (
                match
                  Wedge_httpd.Https_client.get ~rng
                    ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" ep
                with
                | { Wedge_httpd.Https_client.response = Some r; _ }
                  when r.Wedge_httpd.Http.status = 200 ->
                    incr served_bodies
                | _ -> incr client_errors
                | exception _ -> incr client_errors))
      done;
      (* The silent holder (i = 5) only resolves when drain force-cuts
         it — this guard has no header deadline — so wait for everyone
         else, drain, then wait for the straggler's cut to land. *)
      (* [>=]: an injected chan fault can cut the silent holder early,
         landing its tally before the drain below. *)
      let n_silent = 1 in
      Fiber.wait_until ~what:"httpd melee resolved" (fun () ->
          Byzantine.total t >= n_garbage - n_silent
          && !served_bodies + !client_errors >= n_tls);
      Fault_plan.disarm plan;
      Guard.drain guard l;
      Fiber.wait_until ~what:"silent holders cut" (fun () ->
          Byzantine.total t = n_garbage))
    (fun () ->
      Printf.sprintf "httpd %s tls_ok=%d tls_err=%d %s degraded=%d rejected=%d plan=%s"
        (tally_to_string t) !served_bodies !client_errors
        (guard_to_string (Guard.stats guard))
        (Stats.get k.Kernel.stats "httpd.degraded")
        (Stats.get k.Kernel.stats "httpd.rejected")
        (plan_digest plan))

(* ------------------------------------------------------------------ *)
(* SSHD: fork-per-connection privsep baseline (COW churn) + garbage    *)

let run_sshd ~policy ~diff ~faults ~seed =
  let plan = Fault_plan.create ~seed () in
  if faults then begin
    Fault_plan.rule plan ~site:"chan.read" ~prob:0.02 [ Fault_plan.Drop; Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"chan.write" ~prob:0.02 [ Fault_plan.Reset ]
  end;
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let env = Wedge_sshd.Sshd_env.install ~image_pages:40 ~seed k in
  let app = env.Wedge_sshd.Sshd_env.app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:6 () in
  let guard = Guard.create ~max_conns:3 () in
  let t = Byzantine.tally () in
  let is_rejection _ = false in
  let n_clients = 8 in
  checked ~kernel:k ~app ~policy ~diff
    (fun oracle ->
      Oracle.add_guard oracle ~name:"sshd.guard" guard;
      Fiber.spawn (fun () -> Wedge_sshd.Sshd_privsep.serve_loop env guard l);
      Fault_plan.arm plan;
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            if i mod 3 = 0 then
              Byzantine.half_close t l ~request:"SSH-2.0-chaos\r\n\r\n" ~is_rejection
            else
              Byzantine.oneshot t l
                ~request:"SSH-2.0-chaos\r\nnot-a-kexinit\r\n" ~is_rejection)
      done;
      Fiber.wait_until ~what:"sshd melee resolved" (fun () -> Byzantine.total t = n_clients);
      Fault_plan.disarm plan;
      Guard.drain guard l)
    (fun () ->
      Printf.sprintf "sshd %s %s degraded=%d rejected=%d plan=%s" (tally_to_string t)
        (guard_to_string (Guard.stats guard))
        (Stats.get k.Kernel.stats "sshd.degraded")
        (Stats.get k.Kernel.stats "sshd.rejected")
        (plan_digest plan))

(* ------------------------------------------------------------------ *)
(* RACY: the deliberately schedule-dependent lost-update bug           *)

let racy_rounds = 3

let run_racy ~policy ~diff ~faults:_ ~seed:_ =
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app ~image_pages:40 k in
  W.boot app;
  let main_ctx = W.main_ctx app in
  let tag = W.tag_new ~name:"counter" main_ctx in
  let addr = W.smalloc main_ctx 8 tag in
  W.write_u64 main_ctx addr 0;
  let done_n = ref 0 in
  (* Worker A ([yields_mid = false]) never yields: it runs its whole
     increment loop as one scheduling unit.  Worker B opens a window
     between read and write.  Spawned A-then-B, round-robin runs A to
     completion before B's first window opens, so the lost update only
     manifests under schedules that start B first — exactly the
     schedule-dependence exploration must be able to find. *)
  let worker yields_mid ctx _ =
    for _ = 1 to racy_rounds do
      let v = W.read_u64 ctx addr in
      if yields_mid then Fiber.yield ();
      (* The unlocked read-modify-write: any increment scheduled into the
         window above is lost. *)
      W.write_u64 ctx addr (v + 1);
      if yields_mid then Fiber.yield ()
    done;
    0
  in
  let spawn_worker yields_mid =
    Fiber.spawn (fun () ->
        let sc = W.sc_create () in
        W.sc_mem_add sc tag Wedge_kernel.Prot.RW;
        ignore (W.sthread_join main_ctx (W.sthread_create main_ctx sc (worker yields_mid) 0));
        incr done_n)
  in
  checked ~kernel:k ~app ~policy ~diff
    (fun _oracle ->
      spawn_worker false;
      spawn_worker true;
      Fiber.wait_until ~what:"racy workers joined" (fun () -> !done_n = 2);
      let final = W.read_u64 main_ctx addr in
      if final <> 2 * racy_rounds then
        raise
          (Oracle.Violation
             (Printf.sprintf "racy: lost update — counter %d after %d increments" final
                (2 * racy_rounds))))
    (fun () -> Printf.sprintf "racy counter=%d" (W.read_u64 main_ctx addr))

(* ------------------------------------------------------------------ *)
(* Fault storms: self-healing under injected crashes AND induced hangs.

   On top of the channel/memory faults of the base scenarios, the storm
   plans roll ["fiber.stall"] (a fiber freezes for 20 µs of simulated
   time — far past the watchdog's deadline) and ["cgate.call"] (a
   callgate stalls or crashes mid-call).  The servers run their declared
   supervision trees behind a guard armed with a circuit breaker and a
   watchdog; the scenario asserts the full self-healing story: every
   hung compartment is cut by the watchdog (oracle invariant), the
   listener survives, the breaker closes again once the storm passes
   (heal epilogue), and the oracle sweeps clean — no leaked frame or
   descriptor across any restart, cut, or quarantine. *)

let storm_plan ?(pooled = false) ~seed ~faults ~cgates () =
  let plan = Fault_plan.create ~seed () in
  if faults then begin
    Fault_plan.rule plan ~site:"chan.read" ~prob:0.04 [ Fault_plan.Drop; Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"chan.write" ~prob:0.04 [ Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"physmem.alloc" ~prob:0.002 [ Fault_plan.Enomem ];
    Fault_plan.rule plan ~site:"fiber.stall" ~prob:0.003 [ Fault_plan.Delay 20_000 ];
    if cgates then
      Fault_plan.rule plan ~site:"cgate.call" ~prob:0.02
        [ Fault_plan.Delay 20_000; Fault_plan.Crash ];
    if pooled then begin
      (* The restore path itself is attackable: stamps crash mid-restore
         (the frozen image and its refcounts must survive pristine — the
         oracle's frozen-frame sweep checks exactly that), and the
         mid-storm freeze probe rolls its own site. *)
      Fault_plan.rule plan ~site:"pool.stamp" ~prob:0.05 [ Fault_plan.Crash ];
      Fault_plan.rule plan ~site:"pool.freeze" ~prob:0.5 [ Fault_plan.Crash ]
    end
  end;
  Fault_plan.disarm plan;
  plan

(* The pooled storms' MTTR claim, made concrete: recovery time differs
   from the fresh-boot storm only by the spawn term, so a twin world
   with the paper's spawn prices armed (Table 2: per-PTE and per-fd
   copy; the flat stamp charge) measures exactly that term for the same
   image size the storm ran with.  Fresh boot pays O(pages); a stamp
   pays the flat [pool_stamp] — the assertion is strict. *)
let spawn_advantage ~image_pages =
  let costs =
    { Cost_model.free with Cost_model.pte_copy = 190; fd_dup = 250; pool_stamp = 950 }
  in
  let k = Kernel.create ~costs () in
  let clock = k.Kernel.clock in
  let app = W.create_app ~image_pages k in
  W.boot app;
  let main = W.main_ctx app in
  let worker _ _ = 0 in
  let fresh_ns = ref 0 and stamp_ns = ref 0 in
  Fiber.run ~clock (fun () ->
      let sc = W.sc_create () in
      W.sc_set_uid sc 99;
      let t0 = Clock.now clock in
      ignore (W.sthread_create main sc worker 0);
      fresh_ns := Clock.now clock - t0;
      let pool_sc = W.sc_create () in
      W.sc_set_uid pool_sc 99;
      let pool = W.Pool.freeze ~name:"storm.pool" main pool_sc in
      let t1 = Clock.now clock in
      ignore (W.Pool.stamp main pool worker 0);
      stamp_ns := Clock.now clock - t1);
  if !stamp_ns >= !fresh_ns then
    raise
      (Oracle.Violation
         (Printf.sprintf "pooled stamp (%d ns) does not beat fresh boot (%d ns)"
            !stamp_ns !fresh_ns));
  (!fresh_ns, !stamp_ns)

(* Mid-storm freeze probe for the pooled storms: with the plan armed,
   ["pool.freeze"] may crash the capture — either way the image registry
   and refcounts must sweep clean, and a successful probe exercises
   [discard]'s decref path under the same storm. *)
let freeze_probe ~pooled main_ctx =
  if not pooled then "-"
  else
    let sc = W.sc_create () in
    match W.Pool.freeze ~name:"storm.probe" main_ctx sc with
    | pool ->
        W.Pool.discard main_ctx pool;
        "ok"
    | exception _ -> "fault"

let pool_summary ~pooled app =
  if not pooled then ""
  else
    Printf.sprintf " pool=%d/%d/%d"
      app.Wedge_core.Engine.pool_freezes app.Wedge_core.Engine.pool_stamps
      app.Wedge_core.Engine.pool_hits

let assert_pool_used ~pooled ~server app =
  if pooled && app.Wedge_core.Engine.pool_hits = 0 then
    raise (Oracle.Violation (server ^ ": pooled storm never stamped a worker"))

let storm_breaker () =
  Guard.breaker_config ~consecutive:3 ~rate:0.5 ~min_samples:6 ~window_ns:40_000
    ~open_ns:5_000 ~probes:2 ~brownout:0.3 ()

(* The watchdog sweep runs at every context switch ([checked]'s
   [extra_hook]), so a hung heart is cut within one scheduling step of
   its deadline.  The oracle re-checks between switches too (syscall
   entries), where a single large clock charge (a 20 µs induced stall)
   can land before the next sweep — the slack covers exactly that. *)
let storm_watchdog_invariant oracle w =
  Oracle.add_invariant oracle ~name:"watchdog.cut-by-deadline" (fun () ->
      Watchdog.self_check ~slack_ns:50_000 w)

let storm_summary ~server ~k ~t ~heal ~guard ~w ~tree =
  Printf.sprintf "%s %s heal=%d %s breaker=%s wd_cuts=%d wd_beats=%d %s degraded=%d shed=%d plan_armed"
    server (tally_to_string t) heal
    (guard_to_string (Guard.stats guard))
    (Guard.breaker_summary guard) (Watchdog.cuts w) (Watchdog.beats w)
    (Supervisor.tree_to_string tree)
    (Stats.get k.Kernel.stats (server ^ ".degraded"))
    (Stats.get k.Kernel.stats (server ^ ".shed"))

let run_httpd_storm ?(pooled = false) ~policy ~diff ~faults ~seed () =
  let advantage = if pooled then Some (spawn_advantage ~image_pages:60) else None in
  let plan = storm_plan ~pooled ~seed ~faults ~cgates:true () in
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let clock = k.Kernel.clock in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed k in
  let app = env.Wedge_httpd.Httpd_env.app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:8 () in
  let w = Watchdog.create ~deadline_ns:6_000 clock in
  let guard =
    Guard.create ~clock ~header_deadline_ns:8_000 ~breaker:(storm_breaker ())
      ~watchdog:w ~max_conns:4 ()
  in
  let t = Byzantine.tally () in
  let is_rejection s = contains s "503" in
  let n_clients = 12 in
  let clean_request = "GET /index.html HTTP/1.1\r\n\r\n" in
  let pool = if pooled then Some (Wedge_httpd.Httpd_simple.worker_pool env) else None in
  let tree =
    Wedge_httpd.Httpd_simple.supervision_tree
      ~worker_policy:(Supervisor.policy ~max_restarts:1 ())
      ?pool env
  in
  let node, _, _ = tree in
  let heal = ref 0 in
  let probe_outcome = ref "-" in
  checked ~kernel:k ~app ~sched_faults:plan ~clock ~extra_hook:(Watchdog.hook w)
    ~policy ~diff
    (fun oracle ->
      Oracle.add_guard oracle ~name:"httpd.guard" guard;
      storm_watchdog_invariant oracle w;
      Fiber.spawn (fun () ->
          Wedge_httpd.Httpd_simple.serve_loop ~max_request_bytes:4096 ~supervision:tree
            env guard l);
      Fault_plan.arm plan;
      probe_outcome := freeze_probe ~pooled (W.main_ctx app);
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            if i mod 4 = 0 then
              (* A truncated ClientHello frame (header claims 256 bytes,
                 body never arrives): the worker blocks mid-record, and
                 only hang detection can reclaim the slot. *)
              Byzantine.mid_header_stall t l ~clock ~step_ns:1_000
                ~prefix:"h\001\000partial-hello" ~is_rejection ()
            else if i mod 5 = 0 then
              Byzantine.half_close t l ~request:"GET / HTTP/1.0\r\n\r\n" ~is_rejection
            else Byzantine.oneshot t l ~request:clean_request ~is_rejection)
      done;
      Fiber.wait_until ~what:"httpd storm resolved" (fun () ->
          Byzantine.total t = n_clients);
      Fault_plan.disarm plan;
      let probes = Byzantine.tally () in
      heal :=
        heal_breaker ~what:"httpd" guard clock (fun () ->
            Byzantine.oneshot probes l ~request:clean_request ~is_rejection);
      Guard.drain guard l;
      assert_pool_used ~pooled ~server:"httpd" app)
    (fun () ->
      storm_summary ~server:"httpd" ~k ~t ~heal:!heal ~guard ~w ~tree:node
      ^ pool_summary ~pooled app
      ^ (if pooled then Printf.sprintf " freeze2=%s" !probe_outcome else "")
      ^
      match advantage with
      | None -> ""
      | Some (f, s) -> Printf.sprintf " spawn_fresh=%dns spawn_stamp=%dns" f s)

let run_pop3_storm ?(pooled = false) ~policy ~diff ~faults ~seed () =
  let advantage = if pooled then Some (spawn_advantage ~image_pages:60) else None in
  let plan = storm_plan ~pooled ~seed ~faults ~cgates:true () in
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let clock = k.Kernel.clock in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main_ctx = W.main_ctx app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:8 () in
  let w = Watchdog.create ~deadline_ns:6_000 clock in
  let guard =
    Guard.create ~clock ~header_deadline_ns:8_000 ~breaker:(storm_breaker ())
      ~watchdog:w ~max_conns:4 ()
  in
  let t = Byzantine.tally () in
  let is_rejection s = contains s "-ERR busy" in
  let n_clients = 12 in
  let clean_request = "USER alice\r\nPASS wonderland\r\nSTAT\r\nQUIT\r\n" in
  let pool = if pooled then Some (Wedge_pop3.Pop3_wedge.worker_pool main_ctx) else None in
  let tree = Wedge_pop3.Pop3_wedge.supervision_tree ?pool main_ctx in
  let node, _, _ = tree in
  let heal = ref 0 in
  let probe_outcome = ref "-" in
  checked ~kernel:k ~app ~sched_faults:plan ~clock ~extra_hook:(Watchdog.hook w)
    ~policy ~diff
    (fun oracle ->
      Oracle.add_guard oracle ~name:"pop3.guard" guard;
      storm_watchdog_invariant oracle w;
      Fiber.spawn (fun () ->
          Wedge_pop3.Pop3_wedge.serve_loop ~supervision:tree main_ctx guard l);
      Fault_plan.arm plan;
      probe_outcome := freeze_probe ~pooled main_ctx;
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            if i mod 4 = 0 then
              Byzantine.mid_header_stall t l ~clock ~step_ns:1_000 ~prefix:"USER ali"
                ~is_rejection ()
            else if i mod 5 = 0 then
              Byzantine.half_close t l ~request:"USER alice\r\nQUIT\r\n" ~is_rejection
            else Byzantine.oneshot t l ~request:clean_request ~is_rejection)
      done;
      Fiber.wait_until ~what:"pop3 storm resolved" (fun () ->
          Byzantine.total t = n_clients);
      Fault_plan.disarm plan;
      let probes = Byzantine.tally () in
      heal :=
        heal_breaker ~what:"pop3" guard clock (fun () ->
            Byzantine.oneshot probes l ~request:clean_request ~is_rejection);
      Guard.drain guard l;
      assert_pool_used ~pooled ~server:"pop3" app)
    (fun () ->
      storm_summary ~server:"pop3" ~k ~t ~heal:!heal ~guard ~w ~tree:node
      ^ pool_summary ~pooled app
      ^ (if pooled then Printf.sprintf " freeze2=%s" !probe_outcome else "")
      ^
      match advantage with
      | None -> ""
      | Some (f, s) -> Printf.sprintf " spawn_fresh=%dns spawn_stamp=%dns" f s)

let run_sshd_storm ?(pooled = false) ~policy ~diff ~faults ~seed () =
  let advantage = if pooled then Some (spawn_advantage ~image_pages:40) else None in
  (* No callgates on the privsep path: hangs come from fiber stalls. *)
  let plan = storm_plan ~pooled ~seed ~faults ~cgates:false () in
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let clock = k.Kernel.clock in
  let env = Wedge_sshd.Sshd_env.install ~image_pages:40 ~seed k in
  let app = env.Wedge_sshd.Sshd_env.app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:6 () in
  let w = Watchdog.create ~deadline_ns:6_000 clock in
  let guard =
    Guard.create ~clock ~header_deadline_ns:8_000 ~breaker:(storm_breaker ())
      ~watchdog:w ~max_conns:3 ()
  in
  let t = Byzantine.tally () in
  let is_rejection _ = false in
  let n_clients = 9 in
  let pool = if pooled then Some (Wedge_sshd.Sshd_privsep.slave_pool env) else None in
  let tree = Wedge_sshd.Sshd_privsep.supervision_tree ?pool env in
  let node, _, _ = tree in
  let heal = ref 0 in
  let probe_outcome = ref "-" in
  (* The healing probe is a real SSH login: garbage cannot prove the
     backend healthy, a key exchange + authentication can. *)
  let probe_n = ref 0 in
  let probe () =
    incr probe_n;
    match Chan.connect l with
    | exception _ -> ()
    | ep -> (
        let rng = Drbg.create ~seed:(seed + 0x5AFE + !probe_n) in
        match
          Wedge_sshd.Ssh_client.login ~rng
            ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
            ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Wedge_crypto.Dsa.pub
            ~user:"alice"
            (Wedge_sshd.Ssh_client.Password "wonderland")
            ep
        with
        | Ok conn -> Wedge_sshd.Ssh_client.close conn
        | Error _ -> ( try Chan.close ep with _ -> ())
        | exception _ -> ( try Chan.close ep with _ -> ()))
  in
  checked ~kernel:k ~app ~sched_faults:plan ~clock ~extra_hook:(Watchdog.hook w)
    ~policy ~diff
    (fun oracle ->
      Oracle.add_guard oracle ~name:"sshd.guard" guard;
      storm_watchdog_invariant oracle w;
      Fiber.spawn (fun () ->
          Wedge_sshd.Sshd_privsep.serve_loop ~supervision:tree env guard l);
      Fault_plan.arm plan;
      probe_outcome := freeze_probe ~pooled (W.main_ctx app);
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            if i mod 4 = 0 then
              (* A truncated wire frame: the header claims a 256-byte
                 payload, so the slave blocks mid-message — only the
                 watchdog can reclaim it.  (A bad leading byte like a raw
                 "SSH-2.0-" banner fails fast instead of hanging.) *)
              Byzantine.mid_header_stall t l ~clock ~step_ns:1_000
                ~prefix:"D\001\000SSH-2.0-cha" ~is_rejection ()
            else if i mod 5 = 0 then
              Byzantine.half_close t l ~request:"SSH-2.0-chaos\r\n\r\n" ~is_rejection
            else
              Byzantine.oneshot t l ~request:"SSH-2.0-chaos\r\nnot-a-kexinit\r\n"
                ~is_rejection)
      done;
      Fiber.wait_until ~what:"sshd storm resolved" (fun () ->
          Byzantine.total t = n_clients);
      Fault_plan.disarm plan;
      heal := heal_breaker ~what:"sshd" guard clock probe;
      Guard.drain guard l;
      assert_pool_used ~pooled ~server:"sshd" app)
    (fun () ->
      storm_summary ~server:"sshd" ~k ~t ~heal:!heal ~guard ~w ~tree:node
      ^ pool_summary ~pooled app
      ^ (if pooled then Printf.sprintf " freeze2=%s" !probe_outcome else "")
      ^
      match advantage with
      | None -> ""
      | Some (f, s) -> Printf.sprintf " spawn_fresh=%dns spawn_stamp=%dns" f s)

(* ------------------------------------------------------------------ *)
(* HTTPD reactor storm: the httpd storm with the serve path parked on
   the reactor instead of spin-polling — deadlines on the timer wheel,
   the watchdog pumped from the timer tick, accept bursts drained in one
   wake.  Same melee, same self-healing assertions, plus the reactor's
   own interest-set audit as an oracle invariant: no waiter whose
   readiness already holds stays parked (lost wakeup), no registration
   survives on a dead handle (ghost after Chan.abort / a watchdog cut),
   no parked fiber lacks a registration. *)

let run_httpd_reactor_storm ~policy ~diff ~faults ~seed =
  let plan = storm_plan ~seed ~faults ~cgates:true () in
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let clock = k.Kernel.clock in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed k in
  let app = env.Wedge_httpd.Httpd_env.app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:8 () in
  let r = Reactor.create ~clock () in
  let w = Watchdog.create ~deadline_ns:6_000 clock in
  let guard =
    Guard.create ~clock ~header_deadline_ns:8_000 ~breaker:(storm_breaker ())
      ~watchdog:w ~reactor:r ~max_conns:4 ()
  in
  let t = Byzantine.tally () in
  let is_rejection s = contains s "503" in
  let n_clients = 12 in
  let clean_request = "GET /index.html HTTP/1.1\r\n\r\n" in
  let tree =
    Wedge_httpd.Httpd_simple.supervision_tree
      ~worker_policy:(Supervisor.policy ~max_restarts:1 ())
      env
  in
  let node, _, _ = tree in
  let heal = ref 0 in
  (* The reactor ticks before the watchdog hook: a timer-driven cut lands
     first, then the sweep, then the oracle's sampled check observes the
     settled state. *)
  let extra_hook =
    let rhook = Reactor.hook r and whook = Watchdog.hook w in
    fun () ->
      rhook ();
      whook ()
  in
  checked ~kernel:k ~app ~sched_faults:plan ~clock ~extra_hook
    ~on_idle:(Reactor.idle r) ~policy ~diff
    (fun oracle ->
      Oracle.add_guard oracle ~name:"httpd.guard" guard;
      storm_watchdog_invariant oracle w;
      Oracle.add_invariant oracle ~name:"reactor.interest-sets" (fun () ->
          Reactor.self_check r);
      Fiber.spawn (fun () ->
          Wedge_httpd.Httpd_simple.serve_loop ~max_request_bytes:4096 ~supervision:tree
            env guard l);
      Fault_plan.arm plan;
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            if i mod 4 = 0 then
              Byzantine.mid_header_stall t l ~clock ~step_ns:1_000
                ~prefix:"h\001\000partial-hello" ~is_rejection ()
            else if i mod 5 = 0 then
              Byzantine.half_close t l ~request:"GET / HTTP/1.0\r\n\r\n" ~is_rejection
            else Byzantine.oneshot t l ~request:clean_request ~is_rejection)
      done;
      Fiber.wait_until ~what:"httpd reactor storm resolved" (fun () ->
          Byzantine.total t = n_clients);
      Fault_plan.disarm plan;
      let probes = Byzantine.tally () in
      heal :=
        heal_breaker ~what:"httpd" guard clock (fun () ->
            Byzantine.oneshot probes l ~request:clean_request ~is_rejection);
      Guard.drain guard l;
      match Reactor.self_check r with
      | Some msg -> raise (Oracle.Violation ("httpd_reactor_storm: " ^ msg))
      | None -> ())
    (fun () ->
      let rs = Reactor.stats r in
      storm_summary ~server:"httpd" ~k ~t ~heal:!heal ~guard ~w ~tree:node
      ^ Printf.sprintf " reactor_parks=%d reactor_wakes=%d reactor_timers=%d"
          rs.Reactor.parks rs.Reactor.wakeups rs.Reactor.timer_fires)

(* ------------------------------------------------------------------ *)
(* Sharded scenarios: N kernels behind a hashed front door, with the
   cross-shard shootdown fabric under the oracle.                      *)

(* [checked], multikernel edition: one oracle per shard (each wired to
   its kernel's syscalls and fed a sampled stream of switches), the
   fabric's link handlers started before and drained after [main], and
   the end-of-run sweep replaced by {!Oracle.global_sweep} — every
   shard's full refcount/rlimit/TLB/smalloc sweep plus the fabric's
   gtag audit — and a cross-reactor registration audit. *)
let checked_sharded ~fab ~policy ~diff main summarize =
  let shards = Shard.shards fab in
  let oracles =
    Array.map
      (fun (s : Shard.shard) ->
        let o = Oracle.create s.Shard.kernel in
        Oracle.set_app o s.Shard.app;
        o)
      shards
  in
  let refvms =
    if diff then
      Array.to_list (Array.map (fun (s : Shard.shard) -> Refvm.create s.Shard.kernel) shards)
    else []
  in
  Array.iter Oracle.install_syscall_hook oracles;
  List.iter Refvm.arm refvms;
  let on_switch =
    let fhook = Shard.hook fab in
    let ohooks = Array.map Oracle.hook oracles in
    fun () ->
      fhook ();
      Array.iter (fun h -> h ()) ohooks
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Oracle.remove_syscall_hook oracles;
      List.iter Refvm.disarm refvms)
    (fun () ->
      Fiber.run ~policy ~on_switch ~on_idle:(Shard.idle fab) (fun () ->
          Shard.start fab;
          main oracles;
          Shard.stop fab);
      Oracle.global_sweep ~fabric:fab (Array.to_list oracles);
      List.iter Refvm.verify refvms;
      (match Reactor.self_check_multi (Shard.reactors fab) with
      | Some msg -> raise (Oracle.Violation ("sharded reactors: " ^ msg))
      | None -> ());
      Printf.sprintf "%s checks=%d diff_events=%s" (summarize ())
        (Array.fold_left (fun acc o -> acc + Oracle.checks_run o) 0 oracles)
        (if diff then
           string_of_int (List.fold_left (fun acc rv -> acc + Refvm.events rv) 0 refvms)
         else "-"))

(* Mid-run global-revocation exercise: a gtag replicated on every shard,
   read through a recycled callgate on shard 1 — whose pooled sthread
   keeps its address space between invocations, the stale-TLB window —
   then deleted from shard 0.  [gtag_delete] must not return before the
   cross-shard shootdown revoked shard 1's replica, so the re-invocation
   faults (join returns -1) instead of reading stale frames: the fault
   is contained to the caller, never served to a client. *)
let gtag_epilogue ~what fab =
  let s1 = Shard.shard fab 1 in
  let main1 = W.main_ctx s1.Shard.app in
  let g = Shard.gtag_new ~name:"secret" ~pages:1 fab in
  let r1 = Shard.replica g ~sid:1 in
  let addr = W.smalloc main1 16 r1 in
  W.write_string main1 addr "per-conn secret!";
  let sc = W.sc_create () in
  let cgsc = W.sc_create () in
  W.sc_mem_add cgsc r1 Prot.R;
  let gate =
    W.sc_cgate_add ~recycled:true main1 sc ~name:"peek"
      ~entry:(fun gctx ~trusted:_ ~arg:_ -> W.read_u8 gctx addr)
      ~cgsc ~trusted:0
  in
  let invoke () =
    W.sthread_join main1
      (W.sthread_create main1 sc
         (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0)
         0)
  in
  if invoke () <> Char.code 'p' then
    raise (Oracle.Violation (what ^ ": live gtag replica unreadable on shard 1"));
  Shard.gtag_delete fab ~sid:0 g;
  if Shard.gtag_live g then
    raise (Oracle.Violation (what ^ ": gtag still live after delete"));
  if invoke () <> -1 then
    raise
      (Oracle.Violation (what ^ ": stale replica readable after global revocation"));
  Printf.sprintf "gtag=revoked xshoot=%d" (Shard.cross_shard_shootdowns fab)

let sharded_shards = 2

let shard_stats_summary ~prefix fab front =
  String.concat " "
    (List.mapi
       (fun i (s : Shard.shard) ->
         Printf.sprintf "s%d[%s deg=%d rej=%d]" i
           (guard_to_string (Guard.stats (Shard.front_guard front i)))
           (Stats.get s.Shard.kernel.Kernel.stats (prefix ^ ".degraded"))
           (Stats.get s.Shard.kernel.Kernel.stats (prefix ^ ".rejected")))
       (Array.to_list (Shard.shards fab)))

let run_httpd_sharded ~policy ~diff ~faults ~seed =
  let plan = Fault_plan.create ~seed () in
  if faults then begin
    Fault_plan.rule plan ~site:"chan.read" ~prob:0.02 [ Fault_plan.Drop; Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"chan.write" ~prob:0.02 [ Fault_plan.Reset ]
  end;
  Fault_plan.disarm plan;
  let envs =
    Array.init sharded_shards (fun i ->
        let k = Kernel.create ~costs:Cost_model.free ~faults:plan ~shard:i () in
        Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed:(seed + i) k)
  in
  let fab =
    Shard.create
      (Array.map
         (fun e -> (W.kernel e.Wedge_httpd.Httpd_env.app, e.Wedge_httpd.Httpd_env.app))
         envs)
  in
  let front = Shard.front ~costs:Cost_model.free ~faults:plan ~backlog:8 ~max_conns:4 fab in
  let t = Byzantine.tally () in
  let is_rejection s = contains s "503" in
  let served_bodies = ref 0 and client_errors = ref 0 in
  let n_garbage = 8 and n_tls = 2 in
  let revocation = ref "" in
  checked_sharded ~fab ~policy ~diff
    (fun oracles ->
      Array.iteri
        (fun i o ->
          Oracle.add_guard o
            ~name:(Printf.sprintf "httpd.guard.%d" i)
            (Shard.front_guard front i))
        oracles;
      Wedge_httpd.Httpd_simple.serve_sharded ~max_request_bytes:4096 envs front;
      Fault_plan.arm plan;
      for i = 1 to n_garbage do
        Fiber.spawn (fun () ->
            (* Each client hashes to its home shard, like the front door
               would route it. *)
            let l =
              Shard.front_listener front
                (Shard.route fab ~key:(Printf.sprintf "conn-%d" i))
            in
            if i mod 3 = 0 then
              Byzantine.half_close t l ~request:"GET / HTTP/1.0\r\n\r\n" ~is_rejection
            else if i mod 5 = 0 then Byzantine.silent t l
            else
              Byzantine.oneshot t l ~request:"GET /index.html HTTP/1.1\r\n\r\n"
                ~is_rejection)
      done;
      let users = [| "alice"; "bob" |] in
      for i = 1 to n_tls do
        Fiber.spawn (fun () ->
            let rng = Drbg.create ~seed:(seed + i) in
            match Shard.front_connect front ~key:users.(i - 1) with
            | exception _ -> incr client_errors
            | sid, ep -> (
                match
                  Wedge_httpd.Https_client.get ~rng
                    ~pinned:envs.(sid).Wedge_httpd.Httpd_env.priv.Rsa.pub
                    ~path:"/index.html" ep
                with
                | { Wedge_httpd.Https_client.response = Some r; _ }
                  when r.Wedge_httpd.Http.status = 200 ->
                    incr served_bodies
                | _ -> incr client_errors
                | exception _ -> incr client_errors))
      done;
      (* As in [run_httpd]: the silent holder only resolves when drain
         force-cuts it (>=: an injected fault can cut it early). *)
      let n_silent = 1 in
      Fiber.wait_until ~what:"httpd sharded melee resolved" (fun () ->
          Byzantine.total t >= n_garbage - n_silent
          && !served_bodies + !client_errors >= n_tls);
      Fault_plan.disarm plan;
      revocation := gtag_epilogue ~what:"httpd_sharded" fab;
      Shard.front_drain front;
      Fiber.wait_until ~what:"silent holders cut" (fun () ->
          Byzantine.total t = n_garbage))
    (fun () ->
      Printf.sprintf "httpd_sharded %s tls_ok=%d tls_err=%d %s %s plan=%s"
        (tally_to_string t) !served_bodies !client_errors
        (shard_stats_summary ~prefix:"httpd" fab front)
        !revocation (plan_digest plan))

let run_pop3_sharded ~policy ~diff ~faults ~seed =
  let plan = Fault_plan.create ~seed () in
  if faults then begin
    Fault_plan.rule plan ~site:"chan.read" ~prob:0.03 [ Fault_plan.Drop; Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"chan.write" ~prob:0.03 [ Fault_plan.Reset ]
  end;
  Fault_plan.disarm plan;
  let worlds =
    Array.init sharded_shards (fun i ->
        let k = Kernel.create ~costs:Cost_model.free ~faults:plan ~shard:i () in
        Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
        let app = W.create_app ~image_pages:60 k in
        W.boot app;
        (k, app))
  in
  let fab = Shard.create worlds in
  let mains = Array.map (fun (_, app) -> W.main_ctx app) worlds in
  let front =
    Shard.front ~costs:Cost_model.free ~faults:plan ~backlog:8
      ~header_deadline_ns:5_000 ~max_conns:4 fab
  in
  let t = Byzantine.tally () in
  let is_rejection s = contains s "-ERR busy" in
  let n_clients = 16 in
  let revocation = ref "" in
  checked_sharded ~fab ~policy ~diff
    (fun oracles ->
      Array.iteri
        (fun i o ->
          Oracle.add_guard o
            ~name:(Printf.sprintf "pop3.guard.%d" i)
            (Shard.front_guard front i))
        oracles;
      Wedge_pop3.Pop3_wedge.serve_sharded mains front;
      Fault_plan.arm plan;
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            let l =
              Shard.front_listener front
                (Shard.route fab ~key:(Printf.sprintf "conn-%d" i))
            in
            if i mod 4 = 0 then
              Byzantine.half_close t l ~request:"USER alice\r\nQUIT\r\n" ~is_rejection
            else if i mod 7 = 0 then
              Byzantine.oversized t l ~size:2_000
                ~is_rejection:(fun s -> contains s "too long")
            else
              Byzantine.oneshot t l
                ~request:"USER alice\r\nPASS wonderland\r\nSTAT\r\nQUIT\r\n" ~is_rejection)
      done;
      Fiber.wait_until ~what:"pop3 sharded melee resolved" (fun () ->
          Byzantine.total t = n_clients);
      Fault_plan.disarm plan;
      revocation := gtag_epilogue ~what:"pop3_sharded" fab;
      Shard.front_drain front)
    (fun () ->
      Printf.sprintf "pop3_sharded %s %s %s plan=%s" (tally_to_string t)
        (shard_stats_summary ~prefix:"pop3" fab front)
        !revocation (plan_digest plan))

let run_sshd_sharded ~policy ~diff ~faults ~seed =
  let plan = Fault_plan.create ~seed () in
  if faults then begin
    Fault_plan.rule plan ~site:"chan.read" ~prob:0.02 [ Fault_plan.Drop; Fault_plan.Reset ];
    Fault_plan.rule plan ~site:"chan.write" ~prob:0.02 [ Fault_plan.Reset ]
  end;
  Fault_plan.disarm plan;
  let envs =
    Array.init sharded_shards (fun i ->
        let k = Kernel.create ~costs:Cost_model.free ~faults:plan ~shard:i () in
        Wedge_sshd.Sshd_env.install ~image_pages:40 ~seed:(seed + i) k)
  in
  let fab =
    Shard.create
      (Array.map
         (fun e -> (W.kernel e.Wedge_sshd.Sshd_env.app, e.Wedge_sshd.Sshd_env.app))
         envs)
  in
  let front = Shard.front ~costs:Cost_model.free ~faults:plan ~backlog:6 ~max_conns:3 fab in
  let t = Byzantine.tally () in
  let is_rejection _ = false in
  let n_clients = 8 in
  let revocation = ref "" in
  checked_sharded ~fab ~policy ~diff
    (fun oracles ->
      Array.iteri
        (fun i o ->
          Oracle.add_guard o
            ~name:(Printf.sprintf "sshd.guard.%d" i)
            (Shard.front_guard front i))
        oracles;
      Wedge_sshd.Sshd_privsep.serve_sharded envs front;
      Fault_plan.arm plan;
      for i = 1 to n_clients do
        Fiber.spawn (fun () ->
            let l =
              Shard.front_listener front
                (Shard.route fab ~key:(Printf.sprintf "conn-%d" i))
            in
            if i mod 3 = 0 then
              Byzantine.half_close t l ~request:"SSH-2.0-chaos\r\n\r\n" ~is_rejection
            else
              Byzantine.oneshot t l ~request:"SSH-2.0-chaos\r\nnot-a-kexinit\r\n"
                ~is_rejection)
      done;
      Fiber.wait_until ~what:"sshd sharded melee resolved" (fun () ->
          Byzantine.total t = n_clients);
      Fault_plan.disarm plan;
      revocation := gtag_epilogue ~what:"sshd_sharded" fab;
      Shard.front_drain front)
    (fun () ->
      Printf.sprintf "sshd_sharded %s %s %s plan=%s" (tally_to_string t)
        (shard_stats_summary ~prefix:"sshd" fab front)
        !revocation (plan_digest plan))

(* ------------------------------------------------------------------ *)
(* Synthesized least-privilege profiles: record → enforce (§3.4, §7)   *)

(* Each synth scenario runs the same clean workload twice, in fresh
   worlds.  First in Record mode under a fixed deterministic schedule —
   the synthesized profile must be a pure function of the seed, never of
   the explored schedule, or the exploration digest could not be stable.
   Then in Enforce mode under the explored schedule, with the profile
   replacing every hand-written security context and the oracle holding
   the "installed ⊇ observed" invariant at every sampled switch.  No
   fault plan is armed in either phase: a fault-free enforced run under
   the minimal profile is exactly the claim being verified (tightening
   any single grant is the matching negative, exercised in
   test_synth.ml). *)

let accept_next l =
  let got = ref None in
  Fiber.wait_until ~what:"synth accept" (fun () ->
      match Chan.accept l with
      | Some ep ->
          got := Some ep;
          true
      | None -> false);
  Option.get !got

(* Two TLS fetches, the second resuming the first's session, so all three
   callgate operations (new session, premaster, resume) are recorded. *)
let httpd_synth_workload ~seed env synth served errors =
  let l = Chan.listener ~costs:Cost_model.free ~backlog:8 () in
  let session = ref None in
  let fetch i resume =
    let rng = Drbg.create ~seed:(seed + i) in
    match Chan.connect l with
    | exception _ -> incr errors
    | ep -> (
        match
          Wedge_httpd.Https_client.get ?resume ~rng
            ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" ep
        with
        | { Wedge_httpd.Https_client.response = Some r; session = s; _ }
          when r.Wedge_httpd.Http.status = 200 ->
            session := s;
            incr served
        | _ -> incr errors
        | exception _ -> incr errors)
  in
  Fiber.spawn (fun () -> fetch 1 None);
  let d1 = Wedge_httpd.Httpd_simple.serve_connection ?synth env (accept_next l) in
  (* Let client 1 finish before client 2 starts: the session it stored is
     what makes fetch 2 exercise the resumption path on every schedule. *)
  Fiber.wait_until (fun () -> !served + !errors >= 1);
  Fiber.spawn (fun () -> fetch 2 !session);
  let d2 = Wedge_httpd.Httpd_simple.serve_connection ?synth env (accept_next l) in
  Fiber.wait_until (fun () -> !served + !errors >= 2);
  Chan.shutdown l;
  [ d1; d2 ]

let pop3_synth_workload main synth t l =
  let is_rejection s = contains s "-ERR busy" in
  Fiber.spawn (fun () ->
      Byzantine.oneshot t l
        ~request:"USER alice\r\nPASS wonderland\r\nSTAT\r\nLIST\r\nRETR 1\r\nQUIT\r\n"
        ~is_rejection);
  ignore (Wedge_pop3.Pop3_wedge.serve_connection ?synth main (accept_next l));
  Fiber.wait_until (fun () -> Byzantine.total t >= 1);
  Fiber.spawn (fun () ->
      Byzantine.oneshot t l ~request:"USER alice\r\nPASS wonderland\r\nSTAT\r\nQUIT\r\n"
        ~is_rejection);
  ignore (Wedge_pop3.Pop3_wedge.serve_connection ?synth main (accept_next l));
  Fiber.wait_until (fun () -> Byzantine.total t >= 2);
  Chan.shutdown l

let sshd_synth_workload ~seed env synth ok l =
  let finished = ref 0 in
  Fiber.spawn (fun () ->
      let note_done f =
        Fun.protect ~finally:(fun () -> incr finished) f
      in
      note_done (fun () ->
          let rng = Drbg.create ~seed:(seed + 11) in
          match Chan.connect l with
          | exception _ -> ()
          | ep -> (
              match
                Wedge_sshd.Ssh_client.login ~rng
                  ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
                  ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Wedge_crypto.Dsa.pub
                  ~user:"alice"
                  (Wedge_sshd.Ssh_client.Password "wonderland") ep
              with
              | Ok conn ->
                  incr ok;
                  Wedge_sshd.Ssh_client.close conn
              | Error _ -> ())));
  ignore (Wedge_sshd.Sshd_wedge.serve_connection ?synth env (accept_next l));
  Fiber.wait_until (fun () -> !finished >= 1);
  Chan.shutdown l

(* One deterministic (round-robin) run of the named app's synthesis
   workload with [synth] threaded through a fresh world; returns
   (succeeded, summary).  Shared by the scenarios below and by
   [wedge_cli synth]. *)
let synth_apps = [ "httpd"; "pop3"; "sshd" ]

let synth_oneshot ~app ~seed synth =
  let k = Kernel.create ~costs:Cost_model.free () in
  match app with
  | "httpd" ->
      let env = Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed k in
      let served = ref 0 and errors = ref 0 in
      Fiber.run ~policy:Fiber.Round_robin (fun () ->
          ignore (httpd_synth_workload ~seed env synth served errors));
      (!served = 2, Printf.sprintf "served=%d errors=%d" !served !errors)
  | "pop3" ->
      Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
      let app_ = W.create_app ~image_pages:60 k in
      W.boot app_;
      let t = Byzantine.tally () in
      Fiber.run ~policy:Fiber.Round_robin (fun () ->
          let l = Chan.listener ~costs:Cost_model.free ~backlog:8 () in
          pop3_synth_workload (W.main_ctx app_) synth t l);
      (t.Byzantine.completed = 2, tally_to_string t)
  | "sshd" ->
      let env = Wedge_sshd.Sshd_env.install ~image_pages:40 ~seed k in
      let ok = ref 0 in
      Fiber.run ~policy:Fiber.Round_robin (fun () ->
          let l = Chan.listener ~costs:Cost_model.free ~backlog:4 () in
          sshd_synth_workload ~seed env synth ok l);
      (!ok = 1, Printf.sprintf "ok=%d" !ok)
  | a -> invalid_arg ("synth_oneshot: unknown app " ^ a)

(* Record phase: deterministic schedule, fresh world, assert the clean
   workload actually succeeded (a profile synthesized from a broken run
   would be vacuously tight). *)
let synth_record ~app ~seed =
  let synth = Synth.create ~name:app Synth.Record in
  let ok, summary = synth_oneshot ~app ~seed (Some synth) in
  if not ok then
    failwith (Printf.sprintf "%s_synth: record run failed (%s)" app summary);
  Synth.synthesize synth

let synth_rerun ~app ~seed mode =
  let synth = Synth.create ~name:app mode in
  let ok, summary = synth_oneshot ~app ~seed (Some synth) in
  (ok, summary, synth)

let profile_digest ptext = Digest.to_hex (Digest.string ptext)

let run_httpd_synth ~policy ~diff ~faults:_ ~seed =
  let profile = synth_record ~app:"httpd" ~seed in
  let ptext = Synth.Profile.print profile in
  (match Synth.Profile.parse ptext with
  | Ok p when Synth.Profile.equal p profile -> ()
  | _ -> failwith "httpd_synth: synthesized profile does not round-trip");
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed k in
  let synth = Synth.create ~name:"httpd" (Synth.Enforce profile) in
  let served = ref 0 and errors = ref 0 in
  checked ~kernel:k ~app:env.Wedge_httpd.Httpd_env.app ~policy ~diff
    (fun oracle ->
      Oracle.add_invariant oracle ~name:"synth.httpd.superset" (Synth.self_check synth);
      let debugs = httpd_synth_workload ~seed env (Some synth) served errors in
      if !served <> 2 then
        raise
          (Oracle.Violation
             (Printf.sprintf
                "httpd_synth: enforced run served %d/2 (denials: %s) (status: %s)"
                !served
                (String.concat "; " (List.map fst (Synth.denials synth)))
                (String.concat "; "
                   (List.map
                      (fun d ->
                        match d.Wedge_httpd.Httpd_simple.worker_status with
                        | Wedge_kernel.Process.Running -> "running"
                        | Wedge_kernel.Process.Exited n ->
                            Printf.sprintf "exited %d" n
                        | Wedge_kernel.Process.Faulted m -> "faulted: " ^ m)
                      debugs)))))
    (fun () ->
      Printf.sprintf "httpd_synth served=%d errors=%d denials=%d profile=%s" !served
        !errors
        (List.length (Synth.denials synth))
        (profile_digest ptext))

(* POP3's workload has no client RNG, so the seed only names the run. *)
let run_pop3_synth ~policy ~diff ~faults:_ ~seed:_ =
  let profile = synth_record ~app:"pop3" ~seed:0 in
  let ptext = Synth.Profile.print profile in
  (match Synth.Profile.parse ptext with
  | Ok p when Synth.Profile.equal p profile -> ()
  | _ -> failwith "pop3_synth: synthesized profile does not round-trip");
  let k = Kernel.create ~costs:Cost_model.free () in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let synth = Synth.create ~name:"pop3" (Synth.Enforce profile) in
  let t = Byzantine.tally () in
  let l = Chan.listener ~costs:Cost_model.free ~backlog:8 () in
  checked ~kernel:k ~app ~policy ~diff
    (fun oracle ->
      Oracle.add_invariant oracle ~name:"synth.pop3.superset" (Synth.self_check synth);
      pop3_synth_workload (W.main_ctx app) (Some synth) t l;
      if t.Byzantine.completed <> 2 then
        raise
          (Oracle.Violation
             (Printf.sprintf "pop3_synth: enforced run completed %d/2"
                t.Byzantine.completed)))
    (fun () ->
      Printf.sprintf "pop3_synth %s denials=%d degraded=%d profile=%s"
        (tally_to_string t)
        (List.length (Synth.denials synth))
        (Stats.get k.Kernel.stats "pop3.degraded")
        (profile_digest ptext))

let run_sshd_synth ~policy ~diff ~faults:_ ~seed =
  let profile = synth_record ~app:"sshd" ~seed in
  let ptext = Synth.Profile.print profile in
  (match Synth.Profile.parse ptext with
  | Ok p when Synth.Profile.equal p profile -> ()
  | _ -> failwith "sshd_synth: synthesized profile does not round-trip");
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Wedge_sshd.Sshd_env.install ~image_pages:40 ~seed k in
  let synth = Synth.create ~name:"sshd" (Synth.Enforce profile) in
  let ok = ref 0 in
  let l = Chan.listener ~costs:Cost_model.free ~backlog:4 () in
  checked ~kernel:k ~app:env.Wedge_sshd.Sshd_env.app ~policy ~diff
    (fun oracle ->
      Oracle.add_invariant oracle ~name:"synth.sshd.superset" (Synth.self_check synth);
      sshd_synth_workload ~seed env (Some synth) ok l;
      if !ok <> 1 then raise (Oracle.Violation "sshd_synth: enforced login failed"))
    (fun () ->
      Printf.sprintf "sshd_synth ok=%d denials=%d profile=%s" !ok
        (List.length (Synth.denials synth))
        (profile_digest ptext))

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      s_name = "pop3";
      s_doc = "partitioned POP3 under flood, faults and slow-loris";
      s_run = (fun ~policy ~diff ~faults ~seed -> run_pop3 ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "httpd";
      s_doc = "TLS httpd under garbage handshakes, faults and real clients";
      s_run = (fun ~policy ~diff ~faults ~seed -> run_httpd ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "sshd";
      s_doc = "fork-per-connection sshd privsep under protocol garbage";
      s_run = (fun ~policy ~diff ~faults ~seed -> run_sshd ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "httpd_storm";
      s_doc = "httpd self-healing: fault storm + induced hangs, watchdog, breaker, tree";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_httpd_storm ~policy ~diff ~faults ~seed ());
    };
    {
      s_name = "pop3_storm";
      s_doc = "pop3 self-healing: fault storm + induced hangs, watchdog, breaker, tree";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_pop3_storm ~policy ~diff ~faults ~seed ());
    };
    {
      s_name = "sshd_storm";
      s_doc = "sshd self-healing: fault storm + induced hangs, watchdog, breaker, tree";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_sshd_storm ~policy ~diff ~faults ~seed ());
    };
    {
      s_name = "httpd_reactor_storm";
      s_doc = "httpd storm on the event reactor: parked fibers, timer deadlines, wake audit";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_httpd_reactor_storm ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "httpd_pool_storm";
      s_doc = "httpd storm with pooled O(1) restamps, stamp faults, frozen-frame sweep";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_httpd_storm ~pooled:true ~policy ~diff ~faults ~seed ());
    };
    {
      s_name = "pop3_pool_storm";
      s_doc = "pop3 storm with pooled O(1) restamps, stamp faults, frozen-frame sweep";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_pop3_storm ~pooled:true ~policy ~diff ~faults ~seed ());
    };
    {
      s_name = "sshd_pool_storm";
      s_doc = "sshd storm with pooled O(1) restamps, stamp faults, frozen-frame sweep";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_sshd_storm ~pooled:true ~policy ~diff ~faults ~seed ());
    };
    {
      s_name = "httpd_sharded";
      s_doc = "2-shard httpd behind the hashed front door, cross-shard gtag revocation";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_httpd_sharded ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "pop3_sharded";
      s_doc = "2-shard pop3 behind the hashed front door, cross-shard gtag revocation";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_pop3_sharded ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "sshd_sharded";
      s_doc = "2-shard sshd behind the hashed front door, cross-shard gtag revocation";
      s_run =
        (fun ~policy ~diff ~faults ~seed ->
          run_sshd_sharded ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "httpd_synth";
      s_doc = "record → synthesize → enforce a least-privilege httpd profile";
      s_run =
        (fun ~policy ~diff ~faults ~seed -> run_httpd_synth ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "pop3_synth";
      s_doc = "record → synthesize → enforce a least-privilege pop3 profile";
      s_run =
        (fun ~policy ~diff ~faults ~seed -> run_pop3_synth ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "sshd_synth";
      s_doc = "record → synthesize → enforce a least-privilege sshd profile";
      s_run =
        (fun ~policy ~diff ~faults ~seed -> run_sshd_synth ~policy ~diff ~faults ~seed);
    };
    {
      s_name = "racy";
      s_doc = "deliberate lost-update race (the explorer must catch it)";
      s_run = (fun ~policy ~diff ~faults ~seed -> run_racy ~policy ~diff ~faults ~seed);
    };
  ]

let find name = List.find_opt (fun s -> s.s_name = name) all
let names () = List.map (fun s -> s.s_name) all
