(* Differential checking of the memory subsystem.

   The real Vm is an optimising implementation: software TLB, COW breaks,
   quota accounting, atomic multi-page blits.  This module is the naive
   one — flat model frames, a per-pid vpn->mapping table, no caching, no
   sharing tricks — consuming the kernel-wide [Vm.mem_event] stream in
   lockstep and recomputing what every access should have observed.  Any
   disagreement (different bytes read, a success where the model faults,
   a fault the model cannot justify) raises [Mismatch] naming the event.

   Model rules worth their subtlety:
   - [Ev_map] with a seed REPLACES the model frame's bytes: the tag cache
     scrubs frames through direct [Physmem] writes that bypass recording,
     so map-time content is re-learned, never checked.
   - [Ev_cow] copies the old frame's model bytes to the new frame id
     (when the ids differ; an in-place claim keeps them) — exactly the
     semantics the real COW break must implement.
   - A real read needs [pr] (or kernel), a real write [pw] (or kernel):
     by the time [Ev_write] arrives any COW break already updated the
     protection via the preceding [Ev_cow], so a surviving [pcow] means
     the real side wrote without breaking — a genuine bug.
   - u64 scalar reads are compared through the same 63-bit codec the
     accessor uses ([Ev_read.u64]): the model masks bit 63 of its own
     word before comparing.
   - Fault reasons the model can verify ("unmapped page", "no read
     permission", "no write permission") are checked against model
     state; injected/oversized faults are accepted as-is. *)

module Kernel = Wedge_kernel.Kernel
module Physmem = Wedge_kernel.Physmem
module Pagetable = Wedge_kernel.Pagetable
module Process = Wedge_kernel.Process
module Prot = Wedge_kernel.Prot
module Vm = Wedge_kernel.Vm

exception Mismatch of string

let mismatch fmt = Printf.ksprintf (fun s -> raise (Mismatch s)) fmt

let page_size = Physmem.page_size

type mapping = {
  mutable m_frame : int;
  mutable m_prot : Prot.page;
}

type t = {
  kernel : Kernel.t;
  frames : (int, bytes) Hashtbl.t;  (* frame id -> model bytes *)
  procs : (int, (int, mapping) Hashtbl.t) Hashtbl.t;  (* pid -> vpn -> mapping *)
  mutable events : int;
  mutable armed : bool;
}

let create kernel =
  { kernel; frames = Hashtbl.create 256; procs = Hashtbl.create 16; events = 0; armed = false }

let events t = t.events

let proc_table t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.add t.procs pid tbl;
      tbl

let model_frame t frame =
  match Hashtbl.find_opt t.frames frame with
  | Some b -> b
  | None ->
      let b = Bytes.make page_size '\000' in
      Hashtbl.add t.frames frame b;
      b

(* Prime the model from page-table ground truth, so arming mid-run (after
   boot, after servers already mapped their worlds) starts consistent. *)
let sync t =
  Hashtbl.reset t.frames;
  Hashtbl.reset t.procs;
  let pm = t.kernel.Kernel.pm in
  Kernel.iter_processes t.kernel (fun p ->
      let tbl = proc_table t p.Process.pid in
      Pagetable.iter
        (fun vpn pte ->
          Hashtbl.replace tbl vpn
            { m_frame = pte.Pagetable.frame; m_prot = pte.Pagetable.prot };
          if not (Hashtbl.mem t.frames pte.Pagetable.frame) then
            Hashtbl.add t.frames pte.Pagetable.frame
              (Bytes.copy (Physmem.get pm pte.Pagetable.frame)))
        (Vm.page_table p.Process.vm))

(* ------------------------------------------------------------------ *)
(* Model access: what should this read/write have observed?            *)

type outcome =
  | Ok_bytes of bytes
  | Would_fault of string  (* the model's fault reason *)

let model_range t pid addr len ~(access : Vm.access) ~kernel =
  let tbl = proc_table t pid in
  let buf = Bytes.create len in
  let rec go addr dst remaining =
    if remaining = 0 then Ok_bytes buf
    else
      let vpn = addr / page_size in
      let off = addr mod page_size in
      match Hashtbl.find_opt tbl vpn with
      | None -> Would_fault "unmapped page"
      | Some m ->
          let allowed =
            kernel
            ||
            match access with
            | Vm.Read -> m.m_prot.Prot.pr
            | Vm.Write -> m.m_prot.Prot.pw
          in
          if not allowed then
            Would_fault
              (match access with
              | Vm.Read -> "no read permission"
              | Vm.Write -> "no write permission")
          else begin
            let n = min remaining (page_size - off) in
            Bytes.blit (model_frame t m.m_frame) off buf dst n;
            go (addr + n) (dst + n) (remaining - n)
          end
  in
  go addr 0 len

let apply_write t pid addr value =
  let tbl = proc_table t pid in
  let len = Bytes.length value in
  let rec go addr src remaining =
    if remaining > 0 then begin
      let vpn = addr / page_size in
      let off = addr mod page_size in
      match Hashtbl.find_opt tbl vpn with
      | None -> mismatch "refvm: write applied to unmapped vpn 0x%x (pid %d)" vpn pid
      | Some m ->
          let n = min remaining (page_size - off) in
          Bytes.blit value src (model_frame t m.m_frame) off n;
          go (addr + n) (src + n) (remaining - n)
    end
  in
  go addr 0 len

let hex b =
  String.concat "" (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Bytes.get_uint8 b i)))

(* ------------------------------------------------------------------ *)
(* Event application                                                   *)

let apply t (ev : Vm.mem_event) =
  t.events <- t.events + 1;
  match ev with
  | Vm.Ev_map { pid; vpn; frame; prot; seed } ->
      (* Seeded content is re-learned, never checked: the tag cache
         scrubs frames through Physmem directly, bypassing recording. *)
      let content =
        match seed with None -> Bytes.make page_size '\000' | Some snap -> Bytes.copy snap
      in
      Hashtbl.replace t.frames frame content;
      Hashtbl.replace (proc_table t pid) vpn { m_frame = frame; m_prot = prot }
  | Vm.Ev_unmap { pid; vpn } ->
      let tbl = proc_table t pid in
      if not (Hashtbl.mem tbl vpn) then
        mismatch "refvm: pid %d unmapped vpn 0x%x the model never saw mapped" pid vpn;
      Hashtbl.remove tbl vpn
  | Vm.Ev_prot { pid; vpn; prot } -> (
      match Hashtbl.find_opt (proc_table t pid) vpn with
      | None -> mismatch "refvm: pid %d reprotected unmapped vpn 0x%x" pid vpn
      | Some m -> m.m_prot <- prot)
  | Vm.Ev_cow { pid; vpn; frame; prot } -> (
      match Hashtbl.find_opt (proc_table t pid) vpn with
      | None -> mismatch "refvm: pid %d COW-broke unmapped vpn 0x%x" pid vpn
      | Some m ->
          if frame <> m.m_frame then
            Hashtbl.replace t.frames frame (Bytes.copy (model_frame t m.m_frame));
          m.m_frame <- frame;
          m.m_prot <- prot)
  | Vm.Ev_destroy { pid } -> Hashtbl.remove t.procs pid
  | Vm.Ev_read { pid; addr; value; kernel; u64 } -> (
      let len = Bytes.length value in
      match model_range t pid addr len ~access:Vm.Read ~kernel with
      | Would_fault reason ->
          mismatch "refvm: pid %d read 0x%x/%d succeeded but model faults (%s)" pid addr
            len reason
      | Ok_bytes b ->
          (* u64 scalar reads observe the stored word minus bit 63; the
             emitted value already has it cleared, so clear ours too. *)
          if u64 then Bytes.set_uint8 b 7 (Bytes.get_uint8 b 7 land 0x7f);
          if not (Bytes.equal b value) then
            mismatch "refvm: pid %d read 0x%x/%d saw %s but model has %s" pid addr len
              (hex value) (hex b))
  | Vm.Ev_write { pid; addr; value; kernel } -> (
      let len = Bytes.length value in
      match model_range t pid addr len ~access:Vm.Write ~kernel with
      | Would_fault reason ->
          mismatch "refvm: pid %d write 0x%x/%d succeeded but model faults (%s)" pid addr
            len reason
      | Ok_bytes _ -> apply_write t pid addr value)
  | Vm.Ev_fault { pid; addr; access; reason; kernel } -> (
      let tbl = proc_table t pid in
      let vpn = addr / page_size in
      match reason with
      | "unmapped page" ->
          if Hashtbl.mem tbl vpn then
            mismatch "refvm: pid %d faulted 'unmapped' at 0x%x but model maps it" pid addr
      | "no read permission" -> (
          match Hashtbl.find_opt tbl vpn with
          | None -> mismatch "refvm: pid %d read-perm fault at unmapped 0x%x" pid addr
          | Some m ->
              if kernel || m.m_prot.Prot.pr then
                mismatch "refvm: pid %d faulted 'no read permission' at 0x%x but model \
                          allows the read"
                  pid addr)
      | "no write permission" -> (
          match Hashtbl.find_opt tbl vpn with
          | None -> mismatch "refvm: pid %d write-perm fault at unmapped 0x%x" pid addr
          | Some m ->
              if kernel || m.m_prot.Prot.pw || m.m_prot.Prot.pcow then
                mismatch "refvm: pid %d faulted 'no write permission' at 0x%x but model \
                          allows the write"
                  pid addr)
      | _ ->
          (* Injected faults, oversized lengths: not derivable from model
             state, accepted as reported. *)
          ignore access)

(* ------------------------------------------------------------------ *)
(* Arming and the final sweep                                          *)

let arm t =
  if t.armed then invalid_arg "Refvm.arm: already armed";
  sync t;
  t.armed <- true;
  t.kernel.Kernel.mem_rec := Some (apply t)

let disarm t =
  if t.armed then begin
    t.armed <- false;
    t.kernel.Kernel.mem_rec := None
  end

(* End-of-run sweep: every model mapping must exist in the real page
   table with the same frame and protection, with byte-identical frame
   content, and the real table must hold nothing the model lacks.  Only
   mapped frames are compared — an unmapped cached frame may have been
   scrubbed behind the recorder's back, by design. *)
let verify t =
  let pm = t.kernel.Kernel.pm in
  Kernel.iter_processes t.kernel (fun p ->
      let pid = p.Process.pid in
      let pt = Vm.page_table p.Process.vm in
      let tbl = proc_table t pid in
      if Pagetable.count pt <> Hashtbl.length tbl then
        mismatch "refvm: pid %d maps %d pages but model has %d" pid (Pagetable.count pt)
          (Hashtbl.length tbl);
      Pagetable.iter
        (fun vpn pte ->
          match Hashtbl.find_opt tbl vpn with
          | None -> mismatch "refvm: pid %d vpn 0x%x mapped but absent from model" pid vpn
          | Some m ->
              if m.m_frame <> pte.Pagetable.frame then
                mismatch "refvm: pid %d vpn 0x%x backed by frame %d, model says %d" pid
                  vpn pte.Pagetable.frame m.m_frame;
              if m.m_prot <> pte.Pagetable.prot then
                mismatch "refvm: pid %d vpn 0x%x prot %s, model says %s" pid vpn
                  (Prot.page_to_string pte.Pagetable.prot)
                  (Prot.page_to_string m.m_prot);
              if not (Bytes.equal (Physmem.get pm pte.Pagetable.frame) (model_frame t m.m_frame))
              then
                mismatch "refvm: pid %d vpn 0x%x (frame %d) content diverges from model"
                  pid vpn pte.Pagetable.frame)
        pt)
