(** Checkable chaos scenarios for schedule exploration.

    Each scenario builds a fresh simulated world, runs a melee of
    Byzantine clients (optionally under an armed fault plan) with the
    invariant {!Oracle} wired to every system call and a sampled stream
    of context switches, then finishes with a full oracle sweep and —
    when [diff] — a {!Refvm} lockstep check plus end-of-run verify.

    A run returns a deterministic summary string (same seed + policy ⇒
    byte-identical summary); failures are exceptions
    ({!Oracle.Violation}, {!Refvm.Mismatch}, a scenario's end-state
    assertion) which {!Explore} catches and shrinks.

    The ["httpd_storm"/"pop3_storm"/"sshd_storm"] scenarios drive the
    self-healing machinery: on top of channel/memory faults they induce
    {e hangs} (["fiber.stall"] and ["cgate.call"] fault sites) against a
    server running its declared supervision tree behind a guard armed
    with a circuit breaker and a {!Wedge_net.Watchdog}.  They assert
    that every hung compartment is cut within its heartbeat deadline
    (oracle invariant), the listener survives, the breaker closes again
    once the storm passes, and the oracle sweeps clean — no leaked frame
    or descriptor across any restart, cut, or quarantine.

    The ["racy"] scenario is the deliberately buggy control: a lost
    update that only manifests under schedules that interleave a
    yielding read-modify-write — the sanity check that exploration
    actually catches schedule-dependent bugs. *)

type t = {
  s_name : string;
  s_doc : string;
  s_run :
    policy:Wedge_sim.Fiber.policy -> diff:bool -> faults:bool -> seed:int -> string;
}

val all : t list
val find : string -> t option
val names : unit -> string list

(** {1 Profile synthesis entry points}

    The ["httpd_synth"/"pop3_synth"/"sshd_synth"] scenarios close the
    Crowbar loop: record a seeded workload under {!Wedge_crowbar.Cb_log},
    synthesize a least-privilege profile per compartment, then re-run the
    same workload with the profile {e enforced} and explore schedules.
    These helpers expose the same record/re-run pipeline to
    [wedge_cli synth] and the tests. *)

val synth_apps : string list
(** Apps with a synthesis workload: [["httpd"; "pop3"; "sshd"]]. *)

val synth_record : app:string -> seed:int -> Wedge_crowbar.Synth.Profile.t
(** Run [app]'s seeded workload in record mode under the deterministic
    round-robin schedule in a fresh world and synthesize its profile.
    Raises [Failure] if the clean workload itself fails, and
    [Invalid_argument] for an unknown [app]. *)

val synth_rerun :
  app:string ->
  seed:int ->
  Wedge_crowbar.Synth.mode ->
  bool * string * Wedge_crowbar.Synth.t
(** Re-run the same deterministic workload with [mode] installed
    (typically [Complain p] or [Enforce p]); returns
    [(workload_succeeded, summary, session)] — query the session for
    {!Wedge_crowbar.Synth.denials} / {!Wedge_crowbar.Synth.complaints}. *)
