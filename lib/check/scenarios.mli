(** Checkable chaos scenarios for schedule exploration.

    Each scenario builds a fresh simulated world, runs a melee of
    Byzantine clients (optionally under an armed fault plan) with the
    invariant {!Oracle} wired to every system call and a sampled stream
    of context switches, then finishes with a full oracle sweep and —
    when [diff] — a {!Refvm} lockstep check plus end-of-run verify.

    A run returns a deterministic summary string (same seed + policy ⇒
    byte-identical summary); failures are exceptions
    ({!Oracle.Violation}, {!Refvm.Mismatch}, a scenario's end-state
    assertion) which {!Explore} catches and shrinks.

    The ["racy"] scenario is the deliberately buggy control: a lost
    update that only manifests under schedules that interleave a
    yielding read-modify-write — the sanity check that exploration
    actually catches schedule-dependent bugs. *)

type t = {
  s_name : string;
  s_doc : string;
  s_run :
    policy:Wedge_sim.Fiber.policy -> diff:bool -> faults:bool -> seed:int -> string;
}

val all : t list
val find : string -> t option
val names : unit -> string list
