(** Differential checking of the memory subsystem.

    A naive flat reference model of {!Wedge_kernel.Vm} — no TLB, no COW
    tricks, no quota coupling — consumes a kernel's {!Wedge_kernel.Vm.mem_event}
    stream in lockstep and recomputes what every access should have
    observed.  Any disagreement (different bytes, a success where the
    model faults, an unjustifiable fault) raises {!Mismatch}. *)

exception Mismatch of string

type t

val create : Wedge_kernel.Kernel.t -> t

val sync : t -> unit
(** Re-prime the model from page-table and frame ground truth (called by
    {!arm}; exposed for tests). *)

val arm : t -> unit
(** {!sync}, then install the model as the kernel's memory-event
    recorder: from here every access is checked in lockstep.
    @raise Invalid_argument if already armed. *)

val disarm : t -> unit
(** Remove the recorder; idempotent. *)

val apply : t -> Wedge_kernel.Vm.mem_event -> unit
(** Feed one event (what arming wires up; exposed for replaying recorded
    traces).
    @raise Mismatch when the event disagrees with the model. *)

val verify : t -> unit
(** End-of-run sweep: every live process's page table must agree with
    the model — same mappings, frames, protections, byte-identical
    content.
    @raise Mismatch on divergence. *)

val events : t -> int
(** Events consumed so far. *)
