(** The network-facing SSH session loop, shared by all three server
    layouts and parameterised over the privileged operations — implemented
    in-process by the monolithic server, as monitor RPCs by the
    privilege-separated baseline, and as callgates by the Wedge
    partitioning (Figure 6).  The loop itself only ever sees public data
    and authentication verdicts. *)

type priv_ops = {
  sign_kex : client_nonce:bytes -> server_nonce:bytes -> string;
      (** DSA host signature over the kex binding (the dsa_sign gate:
          callers get signatures over hashes the signer computes, never
          over raw caller bytes). *)
  kex_decrypt : bytes -> bytes option;
      (** RSA host-key decryption of the key-exchange secret. *)
  auth_password : user:string -> password:string -> bool;
      (** Full two-step authentication behind one verdict; on success the
          implementation escalates the session's identity itself. *)
  auth_pubkey : user:string -> pub:string -> proof:string -> session_fp:string -> bool;
  skey_challenge : user:string -> (int * string) option;
      (** [None] models the vulnerable pre-fix behaviour that reveals
          whether the user exists; the fixed behaviour always returns a
          (dummy) challenge. *)
  skey_verify : user:string -> response:string -> bool;
}

val run :
  ?max_cmd_bytes:int ->
  ?max_upload_bytes:int ->
  ctx:Wedge_core.Wedge.ctx ->
  io:Wedge_tls.Wire.io ->
  wrng:Wedge_crypto.Drbg.t ->
  host_rsa_pub:string ->
  host_dsa_pub:string ->
  ops:priv_ops ->
  exploit:(Wedge_core.Wedge.ctx -> unit) option ->
  unit ->
  unit
(** Serve one session: version exchange, key exchange, one authentication
    dialogue, then Exec/Data commands until EOF.  [exploit] fires on an
    [Exec "xploit"] command (pre- or post-auth), modelling a parser
    vulnerability in this compartment.

    [max_cmd_bytes] (default 4096) caps Exec command length and
    [max_upload_bytes] (default 1 MiB) caps the scp staging buffer; a
    breach answers ["command too long"] / ["upload too large"] and
    disconnects instead of buffering attacker-sized data. *)
