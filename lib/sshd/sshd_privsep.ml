module W = Wedge_core.Wedge
module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Fd_table = Wedge_kernel.Fd_table
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module Wire = Wedge_tls.Wire
module Supervisor = Wedge_core.Supervisor
module P = Ssh_proto

type monitor = {
  m_getpw : string -> string option;
  m_authpass : user:string -> password:string -> bool;
  m_sign : client_nonce:bytes -> server_nonce:bytes -> string;
  m_decrypt : bytes -> bytes option;
  m_skey_challenge : user:string -> (int * string) option;
  m_skey_verify : user:string -> response:string -> bool;
  m_setuid : slave_pid:int -> uid:int -> unit;
}

let io_of_fd ctx fd =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = W.fd_read ctx fd n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> W.fd_write ctx fd b)

(* The monitor: closures executing in the privileged main process.  The
   IPC marshalling cost is charged per call. *)
let make_monitor (env : Sshd_env.t) =
  let main = env.Sshd_env.main in
  let charge_ipc () =
    let cm = (W.kernel env.Sshd_env.app).Kernel.costs in
    W.charge_app main (2 * cm.Cost_model.context_switch)
  in
  let mono_ops = Sshd_mono.ops env main in
  {
    m_getpw =
      (fun user ->
        charge_ipc ();
        (* The information leak: NULL vs the passwd structure. *)
        match W.vfs_read main Sshd_env.shadow_path with
        | Error _ -> None
        | Ok shadow -> Sshd_env.lookup_shadow shadow ~user);
    m_authpass =
      (fun ~user ~password ->
        charge_ipc ();
        (* PAM scratch lands in the monitor's heap. *)
        mono_ops.Sshd_session.auth_password ~user ~password);
    m_sign =
      (fun ~client_nonce ~server_nonce ->
        charge_ipc ();
        mono_ops.Sshd_session.sign_kex ~client_nonce ~server_nonce);
    m_decrypt =
      (fun ct ->
        charge_ipc ();
        mono_ops.Sshd_session.kex_decrypt ct);
    m_skey_challenge =
      (fun ~user ->
        charge_ipc ();
        (* Vulnerable pre-fix behaviour: no challenge for unknown users. *)
        mono_ops.Sshd_session.skey_challenge ~user);
    m_skey_verify =
      (fun ~user ~response ->
        charge_ipc ();
        mono_ops.Sshd_session.skey_verify ~user ~response);
    m_setuid =
      (fun ~slave_pid ~uid ->
        charge_ipc ();
        W.set_identity main ~target_pid:slave_pid ~uid ());
  }

(* The slave's two-step password authentication over monitor IPC —
   exactly the flow whose first step leaks username validity. *)
let slave_ops (env : Sshd_env.t) monitor slave_ctx =
  {
    Sshd_session.sign_kex = (fun ~client_nonce ~server_nonce -> monitor.m_sign ~client_nonce ~server_nonce);
    kex_decrypt = (fun ct -> monitor.m_decrypt ct);
    auth_password =
      (fun ~user ~password ->
        match monitor.m_getpw user with
        | None -> false (* step 1 already told us the user is bogus *)
        | Some _line ->
            let ok = monitor.m_authpass ~user ~password in
            if ok then begin
              match Sshd_env.find_user env user with
              | Some u -> monitor.m_setuid ~slave_pid:(W.pid slave_ctx) ~uid:u.Sshd_env.uid
              | None -> ()
            end;
            ok);
    auth_pubkey =
      (fun ~user ~pub ~proof ~session_fp ->
        (* Delegated wholesale to the monitor in real privsep; modelled via
           the monolithic logic under monitor privileges. *)
        let ok = (Sshd_mono.ops env env.Sshd_env.main).Sshd_session.auth_pubkey ~user ~pub ~proof ~session_fp in
        if ok then
          (match Sshd_env.find_user env user with
          | Some u -> monitor.m_setuid ~slave_pid:(W.pid slave_ctx) ~uid:u.Sshd_env.uid
          | None -> ());
        ok);
    skey_challenge = (fun ~user -> monitor.m_skey_challenge ~user);
    skey_verify =
      (fun ~user ~response ->
        let ok = monitor.m_skey_verify ~user ~response in
        if ok then
          (match Sshd_env.find_user env user with
          | Some u -> monitor.m_setuid ~slave_pid:(W.pid slave_ctx) ~uid:u.Sshd_env.uid
          | None -> ());
        ok);
  }

let serve_connection ?exploit ?(restart_policy = Supervisor.default_policy) ?supervised
    ?guard ?max_cmd_bytes ?max_upload_bytes (env : Sshd_env.t) ep =
  let main = env.Sshd_env.main in
  let monitor = make_monitor env in
  (* Authentication success always goes through m_setuid — the natural
     place to tell the guard the session is established. *)
  let monitor =
    match guard with
    | None -> monitor
    | Some c ->
        {
          monitor with
          m_setuid =
            (fun ~slave_pid ~uid ->
              Guard.established c;
              monitor.m_setuid ~slave_pid ~uid);
        }
  in
  let raw_ep =
    match guard with Some c -> Guard.endpoint c | None -> Chan.to_endpoint ep
  in
  let fd = W.add_endpoint main raw_ep Fd_table.perm_rw in
  let wrng = Drbg.create ~seed:(Drbg.next64 env.Sshd_env.rng) in
  let slave_main slave =
        (* The slave drops privileges after the fork — but its address
           space is already a copy of the monitor's. *)
        W.set_identity slave ~target_pid:(W.pid slave) ~uid:99 ~root:"/var/empty" ();
        let io = io_of_fd slave fd in
        let exploit =
          Option.map (fun payload ctx -> payload ctx monitor) exploit
        in
        Sshd_session.run ?max_cmd_bytes ?max_upload_bytes ~ctx:slave ~io ~wrng
          ~host_rsa_pub:(Rsa.pub_to_string env.Sshd_env.host_rsa.Rsa.pub)
          ~host_dsa_pub:(Dsa.pub_to_string env.Sshd_env.host_dsa.Dsa.pub)
          ~ops:(slave_ops env monitor slave) ~exploit ();
        0
  in
  let outcome =
    let on_restart = Option.map (fun c () -> Guard.rearm_heart c) guard in
    match supervised with
    | Some child ->
        (* When the child stamps from a snapshot pool, the per-connection
           descriptor must ride in at stamp time — a frozen image cannot
           know this connection's fd. *)
        let pool_extra = W.sc_create () in
        W.sc_fd_add pool_extra fd Fd_table.perm_rw;
        Supervisor.run_child_fork ?on_restart ~pool_extra child slave_main
    | None -> Supervisor.supervise_fork ~policy:restart_policy main slave_main
  in
  (* An SSH session whose slave died mid-protocol cannot be resumed in
     plaintext: the degraded answer is a disconnect, monitor intact.  The
     outcome feeds the guard's breaker either way. *)
  (match outcome with
  | Supervisor.Done _ ->
      (match guard with Some c -> Guard.report c ~ok:true | None -> ())
  | Supervisor.Gave_up _ ->
      W.stat main "sshd.degraded";
      (match guard with Some c -> Guard.report c ~ok:false | None -> ()));
  W.fd_close main fd;
  Chan.close ep

(* Freeze a privileged slave boot: the image inherits the monitor's
   identity (the slave drops privileges itself, exactly as after a fork)
   and a warmed heap.  Per-connection descriptors ride in at stamp time. *)
let slave_pool ?(name = "sshd.slave") (env : Sshd_env.t) =
  let sc = W.sc_create () in
  W.Pool.freeze ~name
    ~warm:(fun ctx ->
      let p = W.malloc ctx 64 in
      W.free ctx p)
    env.Sshd_env.main sc

(* The declared privsep topology: listener first, then the slave
   compartments. *)
let supervision_tree ?strategy ?intensity ?window_ns ?healthy_after_ns ?quarantine_ns
    ?listener_policy ?slave_policy ?pool (env : Sshd_env.t) =
  let node =
    Supervisor.node ?strategy ?intensity ?window_ns ?healthy_after_ns ?quarantine_ns
      ~name:"sshd" env.Sshd_env.main
  in
  let listener =
    Supervisor.child
      ~policy:(Option.value listener_policy ~default:(Supervisor.policy ~max_restarts:2 ()))
      node ~name:"listener"
  in
  let slave =
    Supervisor.child ?policy:slave_policy
      ~restart:
        (match pool with
        | Some p -> Supervisor.From_pool p
        | None -> Supervisor.Fresh)
      node ~name:"slave"
  in
  (node, listener, slave)

(* Guarded accept loop.  SSH has no pre-handshake plaintext channel to
   apologise on: over-capacity (or breaker-shed) connections are simply
   disconnected (the client sees EOF before any version string — the
   classic sshd MaxStartups behaviour). *)
let serve_loop ?restart_policy ?max_cmd_bytes ?max_upload_bytes ?supervision
    (env : Sshd_env.t) guard listener =
  let main = env.Sshd_env.main in
  let supervised = Option.map (fun (_, _, slave) -> slave) supervision in
  let reject decision _ep =
    match decision with
    | Guard.Shed -> W.stat main "sshd.shed"
    | _ -> W.stat main "sshd.rejected"
  in
  let serve c =
    serve_connection ?restart_policy ?supervised ~guard:c ?max_cmd_bytes
      ?max_upload_bytes env (Guard.ep c)
  in
  let accept () =
    Guard.accept_loop guard listener ~reject ~serve;
    0
  in
  match supervision with
  | None -> ignore (accept ())
  | Some (_, listener_child, _) ->
      ignore (Supervisor.run_child_fn listener_child accept)

(* One accept loop per shard, each on its shard's guard and listener. *)
let serve_sharded ?restart_policy ?max_cmd_bytes ?max_upload_bytes envs front =
  Array.iteri
    (fun i env ->
      Wedge_sim.Fiber.spawn (fun () ->
          serve_loop ?restart_policy ?max_cmd_bytes ?max_upload_bytes env
            (Wedge_net.Shard.front_guard front i)
            (Wedge_net.Shard.front_listener front i)))
    envs
