(** The Provos-style privilege-separation baseline (§5.2, [13]): a
    privileged {e monitor} (the main process) and an unprivileged {e slave}
    created by {b fork} — so the slave inherits a copy of the monitor's
    entire memory — which performs all network-facing work and requests
    fixed operations from the monitor over IPC.

    This baseline reproduces both weaknesses the paper contrasts against:
    - the monitor's getpwnam operation returns NULL for unknown users, so
      an exploited slave can probe for valid usernames at will
      (portable OpenSSH 4.7 behaviour);
    - the old S/Key path refuses to issue challenges for unknown users
      (the [Rembrandt 2002] leak, reachable without any exploit);
    - PAM scratch memory from a previous connection's authentication sits
      in the monitor's heap and is inherited by every forked slave
      ([Kuhn 2003]). *)

(** The monitor's IPC surface — what an exploited slave may invoke. *)
type monitor = {
  m_getpw : string -> string option;  (** shadow line or None: a username oracle *)
  m_authpass : user:string -> password:string -> bool;
  m_sign : client_nonce:bytes -> server_nonce:bytes -> string;
  m_decrypt : bytes -> bytes option;
  m_skey_challenge : user:string -> (int * string) option;  (** None leaks nonexistence *)
  m_skey_verify : user:string -> response:string -> bool;
  m_setuid : slave_pid:int -> uid:int -> unit;
}

val serve_connection :
  ?exploit:(Wedge_core.Wedge.ctx -> monitor -> unit) ->
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?supervised:Wedge_core.Supervisor.child ->
  ?guard:Wedge_net.Guard.conn ->
  ?max_cmd_bytes:int ->
  ?max_upload_bytes:int ->
  Sshd_env.t ->
  Wedge_net.Chan.ep ->
  unit
(** Fork a slave for one connection; [exploit] runs inside the slave with
    the monitor IPC available (the attacker controls the slave).

    Fault containment: a slave crash (injected or real) never kills the
    monitor — when [restart_policy] (default: no retries, the encrypted
    stream died with the slave) gives up, the client is disconnected and
    [sshd.degraded] is counted.  [supervised] runs the slave under a
    supervision-tree child instead.  Either way the outcome is reported
    to the guard's breaker when [guard] is present.

    Resource governance: [guard] makes the slave read through the
    deadline-aware endpoint and marks the session established on
    authentication success (any method — all go through the monitor's
    setuid); [max_cmd_bytes]/[max_upload_bytes] are forwarded to
    {!Sshd_session.run}. *)

val slave_pool : ?name:string -> Sshd_env.t -> Wedge_core.Pool.t
(** Freeze the slave's boot into a snapshot pool.  The image keeps the
    monitor's identity — a stamped slave drops privileges itself, exactly
    as a forked one does — and a warmed heap; the per-connection
    descriptor is granted at stamp time by {!serve_connection}.  Pass to
    {!supervision_tree} as [pool] for O(1) slave spawn and crash
    recovery. *)

val supervision_tree :
  ?strategy:Wedge_core.Supervisor.strategy ->
  ?intensity:int ->
  ?window_ns:int ->
  ?healthy_after_ns:int ->
  ?quarantine_ns:int ->
  ?listener_policy:Wedge_core.Supervisor.policy ->
  ?slave_policy:Wedge_core.Supervisor.policy ->
  ?pool:Wedge_core.Pool.t ->
  Sshd_env.t ->
  Wedge_core.Supervisor.node
  * Wedge_core.Supervisor.child
  * Wedge_core.Supervisor.child
(** The declared privsep topology: node ["sshd"] with children
    ["listener"] (registered first, default two accept-loop retries) and
    ["slave"].  Pass the triple to {!serve_loop} as [supervision].  With
    [pool] (see {!slave_pool}) every slave attempt is stamped from the
    frozen image instead of paying the full fork copy. *)

val serve_loop :
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?max_cmd_bytes:int ->
  ?max_upload_bytes:int ->
  ?supervision:
    Wedge_core.Supervisor.node
    * Wedge_core.Supervisor.child
    * Wedge_core.Supervisor.child ->
  Sshd_env.t ->
  Wedge_net.Guard.t ->
  Wedge_net.Chan.listener ->
  unit
(** Guarded accept loop.  Rejected connections are disconnected without a
    banner (counter [sshd.rejected]; breaker-shed ones [sshd.shed]) —
    MaxStartups semantics.  With [supervision] (see {!supervision_tree})
    slaves run under "slave" and the accept loop under "listener".
    Returns once the listener shuts down — compose with
    {!Wedge_net.Guard.drain}. *)

val serve_sharded :
  ?restart_policy:Wedge_core.Supervisor.policy ->
  ?max_cmd_bytes:int ->
  ?max_upload_bytes:int ->
  Sshd_env.t array ->
  Wedge_net.Shard.front ->
  unit
(** Spawn one {!serve_loop} fiber per shard: shard [i] serves from its
    own environment [envs.(i)] behind the front door's shard-[i] guard
    and listener. *)
