module W = Wedge_core.Wedge
module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Drbg = Wedge_crypto.Drbg
module Wire = Wedge_tls.Wire
module P = Ssh_proto

type priv_ops = {
  sign_kex : client_nonce:bytes -> server_nonce:bytes -> string;
  kex_decrypt : bytes -> bytes option;
  auth_password : user:string -> password:string -> bool;
  auth_pubkey : user:string -> pub:string -> proof:string -> session_fp:string -> bool;
  skey_challenge : user:string -> (int * string) option;
  skey_verify : user:string -> response:string -> bool;
}

let charge_cipher ctx n =
  let cm = (W.kernel (W.app_of ctx)).Kernel.costs in
  W.charge_app ctx (cm.Cost_model.hmac_fixed + (cm.Cost_model.cipher_per_byte * n))

let default_max_cmd_bytes = 4096
let default_max_upload_bytes = 1 lsl 20

let run ?(max_cmd_bytes = default_max_cmd_bytes)
    ?(max_upload_bytes = default_max_upload_bytes) ~ctx ~io ~wrng ~host_rsa_pub
    ~host_dsa_pub ~ops ~exploit () =
  try
    (* Version exchange. *)
    P.send_plain io (P.Version "WSSH-1.0-wedge-sshd");
    (match P.recv_plain io with P.Version _ -> () | _ -> failwith "expected version");
    (* Key exchange. *)
    let client_nonce =
      match P.recv_plain io with
      | P.Kexinit n -> n
      | _ -> failwith "expected kexinit"
    in
    let server_nonce = Drbg.bytes wrng 32 in
    let signature = ops.sign_kex ~client_nonce ~server_nonce in
    P.send_plain io
      (P.Kexreply { host_rsa = host_rsa_pub; host_dsa = host_dsa_pub; server_nonce; signature });
    let secret_ct =
      match P.recv_plain io with
      | P.Kexsecret ct -> ct
      | _ -> failwith "expected kexsecret"
    in
    let cm = (W.kernel (W.app_of ctx)).Kernel.costs in
    W.charge_app ctx cm.Cost_model.ssh_login_fixed;
    match ops.kex_decrypt secret_ct with
    | None -> ()
    | Some secret ->
        let keys = P.derive_keys ~secret ~client_nonce ~server_nonce ~side:`Server in
        let fp = P.session_fingerprint ~secret ~client_nonce ~server_nonce in
        let send m =
          charge_cipher ctx (Bytes.length (P.marshal m));
          P.send_sealed io keys m
        in
        let authed = ref false in
        let skey_user = ref None in
        let upload = Buffer.create 256 in
        let upload_target = ref None in
        let rec loop () =
          match P.recv_sealed io keys with
          | Error `Eof -> ()
          | Error `Mac_fail -> loop () (* forged record: drop *)
          | Ok msg -> (
              charge_cipher ctx (Bytes.length (P.marshal msg));
              match msg with
              | P.Auth_password { user; password } ->
                  let ok = ops.auth_password ~user ~password in
                  if ok then authed := true;
                  send (P.Auth_result ok);
                  loop ()
              | P.Auth_pubkey { user; pub; proof } ->
                  let ok = ops.auth_pubkey ~user ~pub ~proof ~session_fp:fp in
                  if ok then authed := true;
                  send (P.Auth_result ok);
                  loop ()
              | P.Skey_start { user } ->
                  (match ops.skey_challenge ~user with
                  | Some (seq, seed) ->
                      skey_user := Some user;
                      send (P.Skey_challenge { seq; seed })
                  | None ->
                      (* vulnerable behaviour: unknown users get refused,
                         leaking their nonexistence *)
                      send (P.Auth_result false));
                  loop ()
              | P.Skey_response { response } ->
                  let ok =
                    match !skey_user with
                    | Some user -> ops.skey_verify ~user ~response
                    | None -> false
                  in
                  if ok then authed := true;
                  send (P.Auth_result ok);
                  loop ()
              | P.Exec cmd when String.length cmd > max_cmd_bytes ->
                  (* Oversized command: reject and disconnect — the
                     session must not buffer an attacker-sized string. *)
                  send (P.Data (Bytes.of_string "command too long"))
              | P.Exec cmd ->
                  (if cmd = "xploit" then begin
                     (* the modelled parser vulnerability *)
                     (match exploit with Some payload -> payload ctx | None -> ());
                     send (P.Data (Bytes.of_string "unknown command"))
                   end
                   else if not !authed then send (P.Data (Bytes.of_string "permission denied"))
                   else
                     match String.split_on_char ' ' cmd with
                     | [ "shell" ] ->
                         send
                           (P.Data
                              (Bytes.of_string
                                 (Printf.sprintf "Welcome, uid %d" (W.getuid ctx))))
                     | [ "scp"; path; _size ] ->
                         upload_target := Some path;
                         Buffer.clear upload;
                         send (P.Data (Bytes.of_string "ready"))
                     | _ -> send (P.Data (Bytes.of_string "unknown command")));
                  loop ()
              | P.Data chunk
                when !authed && !upload_target <> None
                     && Buffer.length upload + Bytes.length chunk > max_upload_bytes ->
                  (* Upload quota: drop the transfer and disconnect rather
                     than grow the staging buffer without bound. *)
                  Buffer.clear upload;
                  upload_target := None;
                  send (P.Data (Bytes.of_string "upload too large"))
              | P.Data chunk ->
                  if !authed && !upload_target <> None then Buffer.add_bytes upload chunk;
                  loop ()
              | P.Eof ->
                  (match !upload_target with
                  | Some path when !authed ->
                      let data = Buffer.contents upload in
                      let cm = (W.kernel (W.app_of ctx)).Kernel.costs in
                      W.charge_app ctx (cm.Cost_model.disk_per_byte * String.length data);
                      let ok = Result.is_ok (W.vfs_write ctx path data) in
                      send (P.Data (Bytes.of_string (if ok then "saved" else "write failed")));
                      upload_target := None
                  | _ -> ());
                  loop ()
              | P.Disconnect -> ()
              | P.Version _ | P.Kexinit _ | P.Kexreply _ | P.Kexsecret _
              | P.Skey_challenge _ | P.Auth_result _ ->
                  loop ())
        in
        loop ()
  with
  | Wire.Closed -> ()
  | Failure _ -> ()
