(** The Wedge-partitioned OpenSSH (Figure 6).

    Per connection, the master spawns one {e worker} sthread that runs as
    an unprivileged user with an empty filesystem root and holds only: the
    connection descriptor, read access to the public host keys and
    configuration, a read-write argument tag, and five callgates —
    {e dsa_sign} (host signature over a hash the gate computes itself),
    {e rsa_kex} (host-key decryption of the key-exchange secret), and one
    authentication gate per mechanism ({e password}, {e dsa_auth},
    {e skey}).  Since sthreads inherit no memory, nothing needs scrubbing.

    Authentication cannot be skipped: only a successful authentication
    callgate changes the worker's uid and filesystem root (the Privtrans
    idiom).  The password gate returns a dummy verdict for unknown users
    and the S/Key gate issues dummy challenges, so neither is a username
    oracle (the two lessons of §5.2). *)

type conn_debug = {
  arg_tag : Wedge_mem.Tag.t;
  worker_status : Wedge_kernel.Process.status;
  final_uid : int;  (** the worker's uid when the session ended *)
}

val serve_connection :
  ?recycled:bool ->
  ?exploit:(Wedge_core.Wedge.ctx -> unit) ->
  ?synth:Wedge_crowbar.Synth.t ->
  Sshd_env.t ->
  Wedge_net.Chan.ep ->
  conn_debug
(** [synth] threads a {!Wedge_crowbar.Synth} session through the
    connection — compartments ["sshd.worker"] (fd role ["conn"]) and the
    five callgates by name; in enforce mode the profile's entries replace
    the hand-written security contexts. *)
