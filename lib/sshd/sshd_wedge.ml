module W = Wedge_core.Wedge
module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Prot = Wedge_kernel.Prot
module Fd_table = Wedge_kernel.Fd_table
module Vfs = Wedge_kernel.Vfs
module Chan = Wedge_net.Chan
module Tag = Wedge_mem.Tag
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module Sha256 = Wedge_crypto.Sha256
module Wire = Wedge_tls.Wire
module P = Ssh_proto
module Synth = Wedge_crowbar.Synth

type conn_debug = {
  arg_tag : Tag.t;
  worker_status : Wedge_kernel.Process.status;
  final_uid : int;
}

let io_of_fd ctx fd =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = W.fd_read ctx fd n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> W.fd_write ctx fd b)

let charge_rsa ctx =
  W.charge_app ctx (W.kernel (W.app_of ctx)).Kernel.costs.Cost_model.rsa_private_op

let charge_dsa ctx =
  W.charge_app ctx (W.kernel (W.app_of ctx)).Kernel.costs.Cost_model.rsa_public_op

(* Escalate the calling worker after successful authentication (§5.2,
   the Privtrans idiom): the only path by which the worker's uid ever
   changes. *)
let promote_caller gctx (env : Sshd_env.t) user =
  match (W.caller_pid gctx, Sshd_env.find_user env user) with
  | Some pid, Some u ->
      W.set_identity gctx ~target_pid:pid ~uid:u.Sshd_env.uid ~root:("/home/" ^ user) ()
  | _ -> ()

(* ---------------- callgates ---------------- *)

(* dsa_sign: the only code that can touch the DSA host key.  It signs the
   hash it computes itself over the caller's data stream — the caller
   cannot obtain a signature over bytes of its choosing (§5.2). *)
let dsa_sign_entry (env : Sshd_env.t) gctx ~trusted:_ ~arg =
  let cn = Bytes.of_string (W.read_lv gctx (arg + 0)) in
  let sn = Bytes.of_string (W.read_lv gctx (arg + 256)) in
  charge_dsa gctx;
  let binding =
    P.kex_binding ~client_nonce:cn ~server_nonce:sn
      ~host_rsa:(W.read_lv gctx env.Sshd_env.pub_rsa_addr)
      ~host_dsa:(W.read_lv gctx env.Sshd_env.pub_dsa_addr)
  in
  let key = Sshd_env.read_host_dsa gctx env in
  let signature = Dsa.sign env.Sshd_env.rng key binding in
  W.write_lv gctx (arg + 512) (Dsa.signature_to_string signature);
  1

(* rsa_kex: host-key decryption of the key-exchange secret; only this gate
   reads the RSA host key. *)
let rsa_kex_entry (env : Sshd_env.t) gctx ~trusted:_ ~arg =
  let ct = Bytes.of_string (W.read_lv gctx (arg + 0)) in
  charge_rsa gctx;
  let key = Sshd_env.read_host_rsa gctx env in
  match Rsa.decrypt key ct with
  | Some secret when Bytes.length secret = 32 ->
      W.write_lv gctx (arg + 512) (Bytes.to_string secret);
      1
  | Some _ | None -> 0

(* password gate: two-step getpwnam + verify kept for ease of coding, but
   with the dummy-passwd fix — an unknown user takes the same path as a
   wrong password, so the gate is not a username oracle (§5.2). *)
let dummy_shadow_line user = user ^ ":0:dummysalt:" ^ String.make 64 '0'

let auth_password_entry (env : Sshd_env.t) gctx ~trusted:_ ~arg =
  let user = W.read_lv gctx (arg + 0) in
  let password = W.read_lv gctx (arg + 256) in
  match W.vfs_read gctx Sshd_env.shadow_path with
  | Error _ -> 0
  | Ok shadow ->
      let line =
        match Sshd_env.lookup_shadow shadow ~user with
        | Some line -> line
        | None -> dummy_shadow_line user
      in
      (* PAM scratch lives and dies in this callgate's private heap. *)
      if Pam.authenticate gctx ~shadow_line:line ~user ~password then begin
        promote_caller gctx env user;
        1
      end
      else 0

(* dsa_auth gate: check the offered key against the user's authorized_keys
   and verify the session-bound proof. *)
let auth_pubkey_entry (env : Sshd_env.t) gctx ~trusted:_ ~arg =
  let user = W.read_lv gctx (arg + 0) in
  let pub = W.read_lv gctx (arg + 256) in
  let proof = W.read_lv gctx (arg + 1024) in
  let session_fp = W.read_lv gctx (arg + 1280) in
  match W.vfs_read gctx ("/home/" ^ user ^ "/.ssh/authorized_keys") with
  | Error _ -> 0
  | Ok keys ->
      if
        List.mem pub (String.split_on_char '\n' keys)
        &&
        match (Dsa.pub_of_string pub, Dsa.signature_of_string proof) with
        | Some pk, Some signature ->
            charge_dsa gctx;
            Dsa.verify pk (P.auth_proof_binding ~session_fp ~user) ~signature
        | _ -> false
      then begin
        promote_caller gctx env user;
        1
      end
      else 0

(* skey gate: op 1 issues a challenge (a deterministic dummy for unknown
   users, fixing the Rembrandt 2002 leak); op 2 verifies and advances the
   chain. *)
let dummy_challenge user =
  let h = Sha256.hex (Sha256.digest_string ("skey-dummy:" ^ user)) in
  let seq = 40 + (Char.code h.[0] mod 50) in
  (seq, "dk" ^ String.sub h 0 6)

let skey_entry (env : Sshd_env.t) gctx ~trusted:_ ~arg =
  let op = W.read_u8 gctx arg in
  let user = W.read_lv gctx (arg + 8) in
  let db () = match W.vfs_read gctx Sshd_env.skey_path with Ok d -> d | Error _ -> "" in
  if op = 1 then begin
    let seq, seed =
      match
        String.split_on_char '\n' (db ())
        |> List.find_map (fun line ->
               match Skey.entry_of_line line with
               | Some e when e.Skey.user = user && not (Skey.exhausted e) ->
                   Some (Skey.challenge e)
               | _ -> None)
      with
      | Some c -> c
      | None -> dummy_challenge user
    in
    W.write_u32 gctx (arg + 512) seq;
    W.write_lv gctx (arg + 520) seed;
    1
  end
  else begin
    let response = W.read_lv gctx (arg + 256) in
    let lines = String.split_on_char '\n' (db ()) in
    let updated = ref false in
    let lines' =
      List.map
        (fun line ->
          match Skey.entry_of_line line with
          | Some e when e.Skey.user = user -> (
              match Skey.verify e ~response with
              | Some e' ->
                  updated := true;
                  Skey.entry_to_line e'
              | None -> line)
          | _ -> line)
        lines
    in
    if !updated then begin
      ignore (W.vfs_write gctx Sshd_env.skey_path (String.concat "\n" lines'));
      promote_caller gctx env user;
      1
    end
    else 0
  end

(* ---------------- the worker's view of the gates ---------------- *)

let worker_ops ctx ~arg_tag ~arg_block ~g_sign ~g_kex ~g_pass ~g_pub ~g_skey =
  let perms = W.sc_create () in
  W.sc_mem_add perms arg_tag Prot.RW;
  let call g = W.cgate ctx g ~perms ~arg:arg_block in
  {
    Sshd_session.sign_kex =
      (fun ~client_nonce ~server_nonce ->
        W.write_lv ctx (arg_block + 0) (Bytes.to_string client_nonce);
        W.write_lv ctx (arg_block + 256) (Bytes.to_string server_nonce);
        if call g_sign = 1 then W.read_lv ctx (arg_block + 512) else "");
    kex_decrypt =
      (fun ct ->
        W.write_lv ctx (arg_block + 0) (Bytes.to_string ct);
        if call g_kex = 1 then Some (Bytes.of_string (W.read_lv ctx (arg_block + 512)))
        else None);
    auth_password =
      (fun ~user ~password ->
        if String.length user > 200 || String.length password > 200 then false
        else begin
          W.write_lv ctx (arg_block + 0) user;
          W.write_lv ctx (arg_block + 256) password;
          call g_pass = 1
        end);
    auth_pubkey =
      (fun ~user ~pub ~proof ~session_fp ->
        W.write_lv ctx (arg_block + 0) user;
        W.write_lv ctx (arg_block + 256) pub;
        W.write_lv ctx (arg_block + 1024) proof;
        W.write_lv ctx (arg_block + 1280) session_fp;
        call g_pub = 1);
    skey_challenge =
      (fun ~user ->
        W.write_u8 ctx arg_block 1;
        W.write_lv ctx (arg_block + 8) user;
        if call g_skey = 1 then
          Some (W.read_u32 ctx (arg_block + 512), W.read_lv ctx (arg_block + 520))
        else None);
    skey_verify =
      (fun ~user ~response ->
        W.write_u8 ctx arg_block 2;
        W.write_lv ctx (arg_block + 8) user;
        W.write_lv ctx (arg_block + 256) response;
        call g_skey = 1);
  }

(* ---------------- master: one connection ---------------- *)

let serve_connection ?(recycled = false) ?exploit ?synth (env : Sshd_env.t) ep =
  let main = env.Sshd_env.main in
  let arg_tag = W.tag_new ~name:"sshd.arg" ~pages:2 main in
  let arg_block = W.smalloc main 6000 arg_tag in
  let fd = W.add_endpoint main (Chan.to_endpoint ep) Fd_table.perm_rw in
  let conn_tags = [ arg_tag ] in
  let conn_fds = [ ("conn", fd) ] in
  let worker_sc =
    match Synth.sthread_sc synth ~name:"sshd.worker" ~tags:conn_tags ~fds:conn_fds main with
    | Some sc -> sc
    | None ->
        let sc = W.sc_create () in
        W.sc_mem_add sc arg_tag Prot.RW;
        W.sc_mem_add sc env.Sshd_env.public_tag Prot.R;
        W.sc_fd_add sc fd Fd_table.perm_rw;
        W.sc_set_uid sc 99;
        W.sc_set_root sc "/var/empty";
        sc
  in
  let hostkey_sc name =
    match Synth.gate_sc synth ~name ~tags:conn_tags main with
    | Some sc -> sc
    | None ->
        let sc = W.sc_create () in
        W.sc_mem_add sc env.Sshd_env.hostkey_tag Prot.R;
        W.sc_mem_add sc env.Sshd_env.public_tag Prot.R;
        sc
  in
  let auth_sc name =
    match Synth.gate_sc synth ~name ~tags:conn_tags main with
    | Some sc -> sc
    | None -> W.sc_create ()
  in
  let mint name entry cgsc =
    W.sc_cgate_add ~recycled main worker_sc ~name
      ~entry:(Synth.wrap_gate synth ~name entry)
      ~cgsc ~trusted:0
  in
  let g_sign = mint "dsa_sign" (dsa_sign_entry env) (hostkey_sc "dsa_sign") in
  let g_kex = mint "rsa_kex" (rsa_kex_entry env) (hostkey_sc "rsa_kex") in
  let g_pass = mint "auth_password" (auth_password_entry env) (auth_sc "auth_password") in
  let g_pub = mint "dsa_auth" (auth_pubkey_entry env) (auth_sc "dsa_auth") in
  let g_skey = mint "skey" (skey_entry env) (auth_sc "skey") in
  let wrng_seed = Drbg.next64 env.Sshd_env.rng in
  let final_uid = ref 99 in
  let worker_body ctx _ =
    let io = io_of_fd ctx fd in
    let ops = worker_ops ctx ~arg_tag ~arg_block ~g_sign ~g_kex ~g_pass ~g_pub ~g_skey in
    Sshd_session.run ~ctx ~io ~wrng:(Drbg.create ~seed:wrng_seed)
      ~host_rsa_pub:(W.read_lv ctx env.Sshd_env.pub_rsa_addr)
      ~host_dsa_pub:(W.read_lv ctx env.Sshd_env.pub_dsa_addr)
      ~ops ~exploit ();
    final_uid := W.getuid ctx;
    0
  in
  let handle =
    W.sthread_create main worker_sc
      (Synth.wrap_sthread synth ~name:"sshd.worker" ~fds:conn_fds worker_body)
      0
  in
  ignore (W.sthread_join main handle);
  W.fd_close main fd;
  Chan.close ep;
  let debug = { arg_tag; worker_status = W.handle_status handle; final_uid = !final_uid } in
  W.tag_delete main arg_tag;
  debug
