module W = Wedge_core.Wedge
module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Chan = Wedge_net.Chan
module Fd_table = Wedge_kernel.Fd_table
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module Wire = Wedge_tls.Wire
module P = Ssh_proto

let io_of_fd ctx fd =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = W.fd_read ctx fd n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> W.fd_write ctx fd b)

let charge_rsa ctx =
  W.charge_app ctx (W.kernel (W.app_of ctx)).Kernel.costs.Cost_model.rsa_private_op

let charge_dsa ctx =
  W.charge_app ctx (W.kernel (W.app_of ctx)).Kernel.costs.Cost_model.rsa_public_op

(* In-process privileged ops: everything reads the server's own memory and
   runs as root. *)
let ops (env : Sshd_env.t) ctx =
  let skey_db () =
    match W.vfs_read ctx Sshd_env.skey_path with Ok db -> db | Error _ -> ""
  in
  {
    Sshd_session.sign_kex =
      (fun ~client_nonce ~server_nonce ->
        charge_dsa ctx;
        let binding =
          P.kex_binding ~client_nonce ~server_nonce
            ~host_rsa:(Rsa.pub_to_string env.Sshd_env.host_rsa.Rsa.pub)
            ~host_dsa:(Dsa.pub_to_string env.Sshd_env.host_dsa.Dsa.pub)
        in
        Dsa.signature_to_string (Dsa.sign env.Sshd_env.rng env.Sshd_env.host_dsa binding));
    kex_decrypt =
      (fun ct ->
        charge_rsa ctx;
        Rsa.decrypt env.Sshd_env.host_rsa ct);
    auth_password =
      (fun ~user ~password ->
        match W.vfs_read ctx Sshd_env.shadow_path with
        | Error _ -> false
        | Ok shadow -> (
            match Sshd_env.lookup_shadow shadow ~user with
            | None -> false
            | Some line -> Pam.authenticate ctx ~shadow_line:line ~user ~password));
    auth_pubkey =
      (fun ~user ~pub ~proof ~session_fp ->
        match W.vfs_read ctx ("/home/" ^ user ^ "/.ssh/authorized_keys") with
        | Error _ -> false
        | Ok keys ->
            List.mem pub (String.split_on_char '\n' keys)
            && (match (Dsa.pub_of_string pub, Dsa.signature_of_string proof) with
               | Some pk, Some signature ->
                   charge_dsa ctx;
                   Dsa.verify pk (P.auth_proof_binding ~session_fp ~user) ~signature
               | _ -> false));
    skey_challenge =
      (fun ~user ->
        let db = skey_db () in
        String.split_on_char '\n' db
        |> List.find_map (fun line ->
               match Skey.entry_of_line line with
               | Some e when e.Skey.user = user && not (Skey.exhausted e) ->
                   Some (Skey.challenge e)
               | _ -> None));
    skey_verify =
      (fun ~user ~response ->
        let db = skey_db () in
        let lines = String.split_on_char '\n' db in
        let updated = ref false in
        let lines' =
          List.map
            (fun line ->
              match Skey.entry_of_line line with
              | Some e when e.Skey.user = user -> (
                  match Skey.verify e ~response with
                  | Some e' ->
                      updated := true;
                      Skey.entry_to_line e'
                  | None -> line)
              | _ -> line)
            lines
        in
        if !updated then
          ignore (W.vfs_write ctx Sshd_env.skey_path (String.concat "\n" lines'));
        !updated);
  }

let serve_connection ?exploit (env : Sshd_env.t) ep =
  let ctx = env.Sshd_env.main in
  let fd = W.add_endpoint ctx (Chan.to_endpoint ep) Fd_table.perm_rw in
  let io = io_of_fd ctx fd in
  let wrng = Drbg.create ~seed:(Drbg.next64 env.Sshd_env.rng) in
  Sshd_session.run ~ctx ~io ~wrng
    ~host_rsa_pub:(Rsa.pub_to_string env.Sshd_env.host_rsa.Rsa.pub)
    ~host_dsa_pub:(Dsa.pub_to_string env.Sshd_env.host_dsa.Dsa.pub)
    ~ops:(ops env ctx) ~exploit ();
  W.fd_close ctx fd;
  Chan.close ep
