(* Software-TLB fast path: wall-clock ns/op for the checked memory
   accessors, against the pre-TLB translation path measured in the same
   run.  The legacy baseline below replicates, through public API, what
   the old Vm did for every access: a per-byte page-table hash lookup and
   protection check (and for bulk reads, one lookup per page but one call
   per byte of multi-byte values).  Numbers vary by host; the ratios and
   the JSON gate (warm fast path strictly cheaper than legacy) are the
   point.

   Modes: full run prints the table and writes BENCH_tlb.json; with
   WEDGE_TLB_SMOKE=1 iteration counts shrink ~20x and the process exits
   nonzero if the warm-TLB u8 path is not measurably cheaper than the
   legacy path — check.sh uses this as a perf-regression gate. *)

module Clock = Wedge_sim.Clock
module Cost_model = Wedge_sim.Cost_model
module Physmem = Wedge_kernel.Physmem
module Pagetable = Wedge_kernel.Pagetable
module Prot = Wedge_kernel.Prot
module Vm = Wedge_kernel.Vm

let page_size = Physmem.page_size
let base = 0x40000000
let pages = 16

let smoke () =
  match Sys.getenv_opt "WEDGE_TLB_SMOKE" with Some "1" -> true | _ -> false

let mk_vm () =
  let pm = Physmem.create () in
  let clock = Clock.create () in
  let vm = Vm.create ~pid:1 pm clock Cost_model.default in
  Vm.map_fresh vm ~addr:base ~pages ~prot:Prot.page_rw ~tag:None;
  (* Give the pages recognisable content. *)
  for i = 0 to (pages * page_size / 8) - 1 do
    Vm.write_u64 vm (base + (i * 8)) (i * 0x9E3779B9)
  done;
  (pm, vm)

(* ---------------------------------------------------------------- *)
(* Legacy translation path, replicated through public API: what the
   old pte_for did on every byte — hashtable walk + protection check +
   frame fetch.  (The old path also rolled the fault plan per byte; we
   omit that here, which only makes the baseline faster and the
   comparison more conservative.) *)

let legacy_translate pm pt addr =
  match Pagetable.find pt ~vpn:(addr lsr 12) with
  | None -> failwith "legacy: unmapped"
  | Some pte ->
      if not pte.Pagetable.prot.Prot.pr then failwith "legacy: no read";
      Physmem.get pm pte.Pagetable.frame

let legacy_read_u8 pm pt addr =
  Char.code (Bytes.get (legacy_translate pm pt addr) (addr land (page_size - 1)))

let legacy_read_u64 pm pt addr =
  (* Byte-at-a-time chaining, as the old read_u64 did via read_u32. *)
  let rec go i acc =
    if i = 8 then acc
    else go (i + 1) (acc lor (legacy_read_u8 pm pt (addr + i) lsl (8 * i)))
  in
  go 0 0

let legacy_blit pm pt addr len =
  let buf = Bytes.create len in
  let rec go a pos remaining =
    if remaining > 0 then begin
      let off = a land (page_size - 1) in
      let chunk = min remaining (page_size - off) in
      let b = legacy_translate pm pt a in
      Bytes.blit b off buf pos chunk;
      go (a + chunk) (pos + chunk) (remaining - chunk)
    end
  in
  go addr 0 len;
  buf

(* ---------------------------------------------------------------- *)

let run () =
  Bench_util.header "Software-TLB fast path vs legacy translation (wall clock, this host)";
  let scale = if smoke () then 20 else 1 in
  let u8_iters = 2_000_000 / scale in
  let u64_iters = 1_000_000 / scale in
  let blit_iters = 40_000 / scale in
  let pm, vm = mk_vm () in
  let pt = Vm.page_table vm in
  let sink = ref 0 in
  (* Rotate across all mapped pages so every TLB slot in play gets used. *)
  let addr_of i = base + (i land (pages - 1) * page_size) + (i * 7 land (page_size - 8)) in

  let (), legacy_u8 =
    Bench_util.wall_time (fun () ->
        for i = 0 to u8_iters - 1 do
          sink := !sink + legacy_read_u8 pm pt (addr_of i)
        done)
  in
  (* Warm the TLB, then measure steady-state hits. *)
  for i = 0 to pages - 1 do
    ignore (Vm.read_u8 vm (base + (i * page_size)))
  done;
  let (), warm_u8 =
    Bench_util.wall_time (fun () ->
        for i = 0 to u8_iters - 1 do
          sink := !sink + Vm.read_u8 vm (addr_of i)
        done)
  in
  (* Cold: every access runs the miss path (flush first).  Far fewer
     iterations — each flush walks 64 slots. *)
  let cold_iters = u8_iters / 20 in
  let (), cold_u8 =
    Bench_util.wall_time (fun () ->
        for i = 0 to cold_iters - 1 do
          Vm.tlb_flush vm;
          sink := !sink + Vm.read_u8 vm (addr_of i)
        done)
  in
  let (), legacy_u64 =
    Bench_util.wall_time (fun () ->
        for i = 0 to u64_iters - 1 do
          sink := !sink + legacy_read_u64 pm pt (base + (i land (pages - 1) * page_size) + (i * 8 land (page_size - 8)))
        done)
  in
  let (), warm_u64 =
    Bench_util.wall_time (fun () ->
        for i = 0 to u64_iters - 1 do
          sink := !sink + Vm.read_u64 vm (base + (i land (pages - 1) * page_size) + (i * 8 land (page_size - 8)))
        done)
  in
  let (), legacy_blit4k =
    Bench_util.wall_time (fun () ->
        for i = 0 to blit_iters - 1 do
          sink := !sink + Bytes.length (legacy_blit pm pt (base + (i land (pages - 1) * page_size)) page_size)
        done)
  in
  let (), warm_blit4k =
    Bench_util.wall_time (fun () ->
        for i = 0 to blit_iters - 1 do
          sink := !sink + Bytes.length (Vm.read_bytes vm (base + (i land (pages - 1) * page_size)) page_size)
        done)
  in
  (* Post-shootdown: a protect_range revocation kills the cached entry;
     the next access pays the miss, later ones hit again.  Measures the
     revoke + refill round trip on one page. *)
  let shoot_iters = u8_iters / 20 in
  let (), post_shootdown =
    Bench_util.wall_time (fun () ->
        for i = 0 to shoot_iters - 1 do
          Vm.protect_range vm ~addr:base ~pages:1 ~prot:Prot.page_rw;
          sink := !sink + Vm.read_u8 vm (base + (i land (page_size - 1)))
        done)
  in
  ignore !sink;

  let per t n = t *. 1e9 /. float_of_int n in
  let l_u8 = per legacy_u8 u8_iters
  and w_u8 = per warm_u8 u8_iters
  and c_u8 = per cold_u8 cold_iters
  and l_u64 = per legacy_u64 u64_iters
  and w_u64 = per warm_u64 u64_iters
  and l_blit = per legacy_blit4k blit_iters
  and w_blit = per warm_blit4k blit_iters
  and s_u8 = per post_shootdown shoot_iters in
  let f = Printf.sprintf "%.1f" in
  let x a b = Printf.sprintf "%.1fx" (a /. b) in
  Bench_util.row3 "operation" "ns/op" "speedup";
  Bench_util.hr ();
  Bench_util.row3 "read_u8   legacy (per-byte walk)" (f l_u8) "-";
  Bench_util.row3 "read_u8   warm TLB" (f w_u8) (x l_u8 w_u8);
  Bench_util.row3 "read_u8   cold (miss + fill)" (f c_u8) "-";
  Bench_util.row3 "read_u64  legacy (8 walks)" (f l_u64) "-";
  Bench_util.row3 "read_u64  warm TLB (1 translation)" (f w_u64) (x l_u64 w_u64);
  Bench_util.row3 "4KiB blit legacy" (f l_blit) "-";
  Bench_util.row3 "4KiB blit warm TLB" (f w_blit) (x l_blit w_blit);
  Bench_util.row3 "revoke + next access (shootdown)" (f s_u8) "-";
  Printf.printf "  tlb: %d hits, %d misses, %d shootdowns this run\n" (Vm.tlb_hits vm)
    (Vm.tlb_misses vm) (Vm.tlb_shootdowns vm);
  (let oc = open_out "BENCH_tlb.json" in
   Printf.fprintf oc
     "{\n\
     \  \"u8_iters\": %d,\n\
     \  \"legacy_u8_ns\": %.2f,\n\
     \  \"warm_u8_ns\": %.2f,\n\
     \  \"cold_u8_ns\": %.2f,\n\
     \  \"legacy_u64_ns\": %.2f,\n\
     \  \"warm_u64_ns\": %.2f,\n\
     \  \"legacy_blit4k_ns\": %.2f,\n\
     \  \"warm_blit4k_ns\": %.2f,\n\
     \  \"post_shootdown_u8_ns\": %.2f,\n\
     \  \"u8_speedup\": %.2f,\n\
     \  \"u64_speedup\": %.2f,\n\
     \  \"blit4k_speedup\": %.2f\n\
      }\n"
     u8_iters l_u8 w_u8 c_u8 l_u64 w_u64 l_blit w_blit s_u8 (l_u8 /. w_u8) (l_u64 /. w_u64)
     (l_blit /. w_blit);
   close_out oc;
   print_endline "  wrote BENCH_tlb.json");
  if smoke () then
    if w_u8 >= l_u8 then begin
      Printf.eprintf
        "bench tlb: FAIL - warm-TLB u8 (%.1f ns) not cheaper than legacy path (%.1f ns)\n" w_u8
        l_u8;
      exit 1
    end
    else Printf.printf "  smoke gate: warm u8 %.1f ns < legacy %.1f ns - OK\n" w_u8 l_u8;
  print_newline ()
