(* Mean-time-to-recovery under injected fault storms — the self-healing
   counterpart of the containment benchmarks.

   One simulated world runs the partitioned POP3 server with its
   declared supervision tree behind a guard armed with a circuit breaker
   and a watchdog.  A deterministic client drives repeated *incidents*:
   a burst of requests with channel faults armed (the backend "goes
   bad"), then clean requests with the plan disarmed until one succeeds
   again.  Everything is measured on the simulated clock, so the JSON
   artifact is byte-stable for a given seed:

   - MTTR: first failed request -> next successful request, per incident
     (p50/p99 across incidents);
   - requests lost per fault: failed or shed requests per incident while
     the backend was broken or the breaker was cooling down;
   - breaker reaction time: first failure of a streak -> trip (recorded
     by the guard);
   - watchdog cuts: hung (half-written header) connections reclaimed at
     the heartbeat deadline.

   [WEDGE_RECOVERY_SMOKE=1] shrinks the incident count for CI. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Clock = Wedge_sim.Clock
module Fiber = Wedge_sim.Fiber
module Fault_plan = Wedge_fault.Fault_plan
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Watchdog = Wedge_net.Watchdog
module Byzantine = Wedge_net.Byzantine
module W = Wedge_core.Wedge
module Supervisor = Wedge_core.Supervisor

let smoke =
  match Sys.getenv_opt "WEDGE_RECOVERY_SMOKE" with Some "1" -> true | _ -> false

let n_incidents = if smoke then 5 else 30
let n_hangs = if smoke then 3 else 8
let burst_requests = 6
let watchdog_deadline_ns = 6_000
let clean_request = "USER alice\r\nPASS wonderland\r\nSTAT\r\nQUIT\r\n"

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let read_until_eof ep =
  let buf = Buffer.create 64 in
  let rec go () =
    let b = Chan.read ep 4096 in
    if Bytes.length b = 0 then Buffer.contents buf
    else begin
      Buffer.add_bytes buf b;
      go ()
    end
  in
  go ()

(* One serial request from the bench's own fiber.  Success means the
   session actually served: a greeting arrived and neither the breaker's
   busy answer nor the degraded farewell did. *)
let request l =
  match Chan.connect l with
  | exception _ -> false
  | ep ->
      let ok =
        try
          Chan.write_string ep clean_request;
          let resp = read_until_eof ep in
          contains resp "+OK"
          && (not (contains resp "-ERR busy"))
          && not (contains resp "-ERR internal")
        with _ -> false
      in
      (try Chan.close ep with _ -> ());
      ok

type incident = { mttr_ns : int; lost : int }

type variant = {
  v_incidents : incident list;
  v_reactions : int list;
  v_stats : Guard.stats;
  v_cuts : int;
  v_stamps : int;
}

(* The spawn-priced cost model both variants pay: per-PTE and per-fd
   copy on a fresh boot, the flat stamp on a pooled one.  The prices are
   the paper's Table 2 shape scaled down so spawns stay well inside the
   storm's watchdog deadline and breaker windows — the fresh/pooled
   *difference* per restart is what the rows measure, and it scales with
   the image either way. *)
let spawn_costs =
  { Cost_model.free with Cost_model.pte_copy = 20; fd_dup = 25; pool_stamp = 100 }

let measure ~pooled =
  let plan = Fault_plan.create ~seed:0xEC0 () in
  Fault_plan.rule plan ~site:"chan.read" ~prob:0.6 [ Fault_plan.Reset ];
  Fault_plan.rule plan ~site:"chan.write" ~prob:0.6 [ Fault_plan.Reset ];
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:spawn_costs ~faults:plan () in
  let clock = k.Kernel.clock in
  Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main_ctx = W.main_ctx app in
  let l = Chan.listener ~costs:Cost_model.free ~faults:plan ~backlog:8 () in
  let w = Watchdog.create ~deadline_ns:watchdog_deadline_ns clock in
  (* No header deadline: the watchdog must be the only thing reclaiming
     the hang phase's half-written headers — that is what its row
     measures (a guard deadline would race it and steal the cut). *)
  let guard =
    Guard.create ~clock
      ~breaker:
        (Guard.breaker_config ~consecutive:3 ~rate:0.5 ~min_samples:6
           ~window_ns:40_000 ~open_ns:5_000 ~probes:2 ~brownout:0.3 ())
      ~watchdog:w ~max_conns:4 ()
  in
  let pool = if pooled then Some (Wedge_pop3.Pop3_wedge.worker_pool main_ctx) else None in
  let tree = Wedge_pop3.Pop3_wedge.supervision_tree ?pool main_ctx in
  let incidents = ref [] in
  let hang_tally = Byzantine.tally () in
  Fiber.run ~clock ~on_switch:(Watchdog.hook w) (fun () ->
      Fiber.spawn (fun () ->
          Wedge_pop3.Pop3_wedge.serve_loop ~supervision:tree main_ctx guard l);
      (* Settle: one clean request so the world is warm before incident 0. *)
      ignore (request l);
      for _ = 1 to n_incidents do
        (* Break the backend: a burst of requests under heavy channel
           faults.  The first failure timestamps the incident. *)
        Fault_plan.arm plan;
        let first_fail = ref (-1) in
        let lost = ref 0 in
        for _ = 1 to burst_requests do
          if not (request l) then begin
            if !first_fail < 0 then first_fail := Clock.now clock;
            incr lost
          end;
          Clock.charge clock 500
        done;
        Fault_plan.disarm plan;
        (* Recover: clean requests until one serves again.  Requests the
           breaker sheds while cooling down are real losses too. *)
        let recovered = ref false in
        let tries = ref 0 in
        while (not !recovered) && !tries < 400 do
          incr tries;
          Clock.charge clock 1_000;
          if request l then recovered := true else incr lost
        done;
        if not !recovered then failwith "bench recovery: backend never recovered";
        (match !first_fail with
        | -1 -> () (* burst didn't land a failure: no incident to record *)
        | t0 ->
            incidents :=
              { mttr_ns = Clock.now clock - t0; lost = !lost } :: !incidents);
        (* Heal fully between incidents so they are independent. *)
        let heal_tries = ref 0 in
        while Guard.breaker_state guard <> Some Guard.Closed && !heal_tries < 100 do
          incr heal_tries;
          Clock.charge clock 6_000;
          ignore (request l)
        done
      done;
      (* Hang phase: half-written headers that only the watchdog can
         reclaim; each cut lands within the heartbeat deadline. *)
      for _ = 1 to n_hangs do
        Fiber.spawn (fun () ->
            Byzantine.mid_header_stall hang_tally l ~clock ~step_ns:1_000
              ~prefix:"USER ali" ~is_rejection:(fun _ -> false) ())
      done;
      Fiber.wait_until ~what:"hang clients resolved" (fun () ->
          Byzantine.total hang_tally = n_hangs);
      Guard.drain guard l);
  {
    v_incidents = List.rev !incidents;
    v_reactions = List.sort compare (Guard.breaker_reactions guard);
    v_stats = Guard.stats guard;
    v_cuts = Watchdog.cuts w;
    v_stamps = app.Wedge_core.Engine.pool_stamps;
  }

type digest = {
  d_n : int;
  d_p50 : int;
  d_p99 : int;
  d_mean : int;
  d_lost : float;
  d_r_p50 : int;
  d_r_max : int;
}

let digest_of v =
  let n = List.length v.v_incidents in
  let mttrs = List.sort compare (List.map (fun i -> i.mttr_ns) v.v_incidents) in
  let lost_total = List.fold_left (fun a i -> a + i.lost) 0 v.v_incidents in
  {
    d_n = n;
    d_p50 = Bench_util.percentile mttrs 0.50;
    d_p99 = Bench_util.percentile mttrs 0.99;
    d_mean = (if n = 0 then 0 else List.fold_left ( + ) 0 mttrs / n);
    d_lost = (if n = 0 then 0. else float_of_int lost_total /. float_of_int n);
    d_r_p50 = Bench_util.percentile v.v_reactions 0.50;
    d_r_max = List.fold_left max 0 v.v_reactions;
  }

let report ~label v d =
  Bench_util.row3 ("MTTR p50 (" ^ label ^ ")") (Bench_util.us d.d_p50) "";
  Bench_util.row3 ("MTTR p99 (" ^ label ^ ")") (Bench_util.us d.d_p99) "";
  Bench_util.row3 ("MTTR mean (" ^ label ^ ")") (Bench_util.us d.d_mean) "";
  Bench_util.row3
    ("requests lost / fault (" ^ label ^ ")")
    (Printf.sprintf "%.2f" d.d_lost) "";
  Bench_util.row3
    ("breaker trips (" ^ label ^ ")")
    (string_of_int v.v_stats.Guard.s_breaker_opened) "";
  Bench_util.row3 ("breaker reaction p50 (" ^ label ^ ")") (Bench_util.us d.d_r_p50) "";
  Bench_util.row3 ("breaker reaction max (" ^ label ^ ")") (Bench_util.us d.d_r_max) "";
  Bench_util.row3 ("admissions shed (" ^ label ^ ")")
    (string_of_int v.v_stats.Guard.s_shed) "";
  Bench_util.row3
    ("watchdog cuts (" ^ label ^ ")")
    (string_of_int v.v_cuts)
    (Printf.sprintf "(deadline %s)" (Bench_util.us watchdog_deadline_ns));
  Bench_util.row3 ("pool stamps (" ^ label ^ ")") (string_of_int v.v_stamps) ""

let variant_json ~label v d =
  Printf.sprintf
    "  \"%s\": {\n\
    \    \"incidents\": %d,\n\
    \    \"mttr_ns\": { \"p50\": %d, \"p99\": %d, \"mean\": %d },\n\
    \    \"requests_lost_per_fault\": %.2f,\n\
    \    \"breaker\": { \"opened\": %d, \"shed\": %d, \"reaction_ns_p50\": %d, \"reaction_ns_max\": %d },\n\
    \    \"watchdog\": { \"cuts\": %d, \"deadline_ns\": %d, \"hang_clients\": %d },\n\
    \    \"pool_stamps\": %d\n\
    \  }"
    label d.d_n d.d_p50 d.d_p99 d.d_mean d.d_lost v.v_stats.Guard.s_breaker_opened
    v.v_stats.Guard.s_shed d.d_r_p50 d.d_r_max v.v_cuts watchdog_deadline_ns n_hangs
    v.v_stamps

let run () =
  Bench_util.header
    (Printf.sprintf
       "Self-healing MTTR, fresh boot vs pooled stamp: %d incidents + %d hangs"
       n_incidents n_hangs);
  let fresh = measure ~pooled:false in
  let pooled = measure ~pooled:true in
  let df = digest_of fresh and dp = digest_of pooled in
  Bench_util.row3 "metric" "value" "unit";
  Bench_util.hr ();
  report ~label:"fresh" fresh df;
  Bench_util.hr ();
  report ~label:"pooled" pooled dp;
  Printf.printf "  (every number is simulated time: the artifact below is\n";
  print_endline "   byte-stable for this seed and schedule)";
  (* The gates: the breaker reaction fix holds (a recorded p50 of 0 was
     the bug), the pool was actually exercised, and pooled recovery
     strictly beats both the fresh-boot run and the historical
     fresh-boot baseline (22.3 us, measured when spawn was free). *)
  if df.d_r_p50 <= 0 || dp.d_r_p50 <= 0 then
    failwith "bench recovery: breaker reaction p50 is 0 (reaction recording broke)";
  if pooled.v_stamps = 0 then
    failwith "bench recovery: pooled variant never stamped a worker";
  if dp.d_p50 >= df.d_p50 then
    failwith
      (Printf.sprintf "bench recovery: pooled MTTR p50 (%d) >= fresh (%d)" dp.d_p50
         df.d_p50);
  if dp.d_p50 >= 22_300 then
    failwith
      (Printf.sprintf "bench recovery: pooled MTTR p50 (%d) >= fresh-boot baseline 22300"
         dp.d_p50);
  (let oc = open_out "BENCH_recovery.json" in
   Printf.fprintf oc "{\n%s,\n%s,\n  \"simulated\": true\n}\n"
     (variant_json ~label:"fresh" fresh df)
     (variant_json ~label:"pooled" pooled dp);
   close_out oc;
   print_endline "  wrote BENCH_recovery.json");
  print_newline ()
