(* Event reactor vs spin-yield blocking across the serve path — the
   tentpole claim: at least 2x lower per-request cost at 10k
   connections, on the simulated clock AND on this host's wall clock.

   Per (mode, conns) a fresh world holds [conns] connections, each with
   a server fiber blocked awaiting a request; only [active] of them
   carry traffic ([reqs] requests each, one 32-byte response out).  The
   rest stay idle for the whole run — the reactor's case is that they
   must cost nothing.

   Request sizes follow the seeded long-tailed mix from [Bench_util]
   (90% small / 9% medium / 1% large, stratified per connection).  The
   original harness gave every request the identical 8x8-byte shape, so
   every sample cost the same and p50 == p99 — the tail percentile was
   measuring nothing, and a regression confined to large requests would
   have been invisible.  With the mix, p99 lands in the large class and
   the bench asserts p99 > p50 (a non-degenerate tail) on top of the
   performance gates.

     baseline  spin-yield Fiber.wait_until, then 8x fd_read
               (one syscall trap per chunk)
     reactor   parked on a channel interest set, then one fd_readv
               (one trap plus batch-op pricing for the whole vector)

   The read phase is timed per request on the simulated clock; the
   window contains no yield, so every sample is exact and unpolluted by
   other fibers.  The aggregate divides the run's whole simulated span
   by requests served — with idle connections charging zero fuel, it
   must not move between 1k and 10k connections (asserted below).  Wall
   clock wraps each Fiber.run once: the baseline pays O(conns) spin
   steps per scheduler rotation while the reactor's parked fibers cost
   nothing, which is a host-time effect the cost model cannot see.

   BENCH_reactor.json carries only simulated integers (ratios x100), so
   it is byte-stable across runs and hosts; wall numbers go to stdout.

   [WEDGE_REACTOR_SMOKE=1] shrinks to 1k connections for CI. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Clock = Wedge_sim.Clock
module Fiber = Wedge_sim.Fiber
module Reactor = Wedge_sim.Reactor
module Fd_table = Wedge_kernel.Fd_table
module Chan = Wedge_net.Chan
module W = Wedge_core.Wedge

let smoke =
  match Sys.getenv_opt "WEDGE_REACTOR_SMOKE" with Some "1" -> true | _ -> false

let conn_counts = if smoke then [ 1_000 ] else [ 1_000; 10_000 ]
let active = if smoke then 32 else 64
let reqs = if smoke then 2 else 16
let mix_seed = 17

(* Per-active-connection request shapes: identical across modes and
   conn counts, so comparisons isolate the serve path. *)
let shapes = Bench_util.skewed_classes ~seed:mix_seed ~n:active
let max_req_bytes =
  Array.fold_left (fun m s -> max m (Bench_util.shape_bytes s)) 0 shapes

let resp = Bytes.make 32 'r'

type mode = Spin | Evented

let mode_label = function Spin -> "baseline" | Evented -> "reactor"

type result = {
  r_read_p50 : int;  (* read-phase simulated ns per request *)
  r_read_p99 : int;
  r_agg : int;  (* whole-run simulated ns / requests served *)
  r_wall : float;  (* seconds around Fiber.run, one shot *)
  r_parks : int;
  r_wakeups : int;
  r_signals : int;
}

let measure mode conns =
  let k = Kernel.create ~costs:Cost_model.default () in
  let clock = k.Kernel.clock in
  let app = W.create_app k in
  W.boot app;
  let ctx = W.main_ctx app in
  let tag = W.tag_new ~name:"reactor.bench" ~pages:80 ctx in
  (* Staging runs for the vectored reads: only active servers ever read,
     so only they need one — sized for the largest shape in the mix. *)
  let bufs = Array.init active (fun _ -> W.smalloc ctx max_req_bytes tag) in
  let r =
    match mode with Evented -> Some (Reactor.create ~clock ()) | Spin -> None
  in
  (* Channels themselves are free: every simulated charge in this bench
     comes from the kernel serve path under test, not from the wire. *)
  let eps = Array.init conns (fun _ -> Chan.pair ~clock ~costs:Cost_model.free ()) in
  (match r with
  | Some r -> Array.iter (fun (_, server_ep) -> Chan.attach_reactor r server_ep) eps
  | None -> ());
  let samples = ref [] in
  let served = ref 0 in
  let serve idx (_, ep) =
    let fd = W.add_endpoint ctx (Chan.to_endpoint ep) Fd_table.perm_rw in
    let sh = shapes.(idx mod active) in
    let req_bytes = Bench_util.shape_bytes sh in
    let rec loop () =
      (match mode with
      | Spin ->
          Fiber.wait_until ~what:"request bytes" (fun () ->
              Chan.bytes_in_flight ep >= req_bytes || Chan.is_eof ep)
      | Evented -> Chan.wait_rx ~bytes:req_bytes ep);
      if Chan.bytes_in_flight ep >= req_bytes then begin
        let t0 = Clock.now clock in
        (match mode with
        | Spin ->
            for _ = 1 to sh.Bench_util.sh_chunks do
              ignore (W.fd_read ctx fd sh.Bench_util.sh_chunk_bytes)
            done
        | Evented ->
            let base = bufs.(idx) in
            let iovs =
              Array.init sh.Bench_util.sh_chunks (fun i ->
                  ( base + (i * sh.Bench_util.sh_chunk_bytes),
                    sh.Bench_util.sh_chunk_bytes ))
            in
            ignore (W.fd_readv ctx fd iovs));
        samples := (Clock.now clock - t0) :: !samples;
        W.fd_write ctx fd resp;
        incr served;
        loop ()
      end
    in
    loop ()
  in
  let client idx (client_ep, _) =
    let sh = shapes.(idx) in
    let chunk = Bytes.make sh.Bench_util.sh_chunk_bytes 'x' in
    for _ = 1 to reqs do
      for _ = 1 to sh.Bench_util.sh_chunks do
        Chan.write client_ep chunk
      done;
      match Chan.read_exact client_ep (Bytes.length resp) with
      | Some _ -> ()
      | None -> failwith "bench reactor: response lost"
    done;
    Chan.close client_ep
  in
  let total_reqs = active * reqs in
  let on_switch = Option.map Reactor.hook r in
  let on_idle = Option.map Reactor.idle r in
  let t0 = Clock.now clock in
  let (), wall =
    Bench_util.wall_once (fun () ->
        Fiber.run ?on_switch ?on_idle (fun () ->
            Array.iteri (fun i pair -> Fiber.spawn (fun () -> serve i pair)) eps;
            for i = 0 to active - 1 do
              let pair = eps.(i) in
              Fiber.spawn (fun () -> client i pair)
            done;
            Fiber.wait_until ~what:"all requests served" (fun () ->
                !served = total_reqs);
            (* Wake the idle herd to EOF so the run can finish. *)
            for i = active to conns - 1 do
              Chan.close (fst eps.(i))
            done))
  in
  if !served <> total_reqs then failwith "bench reactor: request count mismatch";
  let sorted = List.sort compare !samples in
  let stats =
    match r with
    | Some r -> Reactor.stats r
    | None ->
        {
          Reactor.signals = 0;
          wakeups = 0;
          parks = 0;
          timer_fires = 0;
          idle_advances = 0;
          parked = 0;
          timers = 0;
        }
  in
  {
    r_read_p50 = Bench_util.percentile sorted 0.50;
    r_read_p99 = Bench_util.percentile sorted 0.99;
    r_agg = (Clock.now clock - t0) / total_reqs;
    r_wall = wall;
    r_parks = stats.Reactor.parks;
    r_wakeups = stats.Reactor.wakeups;
    r_signals = stats.Reactor.signals;
  }

let ratio_x100 a b = if b = 0 then 0 else a * 100 / b

let count_shape sh =
  Array.fold_left
    (fun n s -> if Bench_util.shape_label s = Bench_util.shape_label sh then n + 1 else n)
    0 shapes

let conns_json (conns, (base : result), (ev : result)) =
  Printf.sprintf
    "    { \"conns\": %d,\n\
    \      \"baseline\": { \"read_ns_p50\": %d, \"read_ns_p99\": %d, \
     \"agg_ns_per_req\": %d },\n\
    \      \"reactor\": { \"read_ns_p50\": %d, \"read_ns_p99\": %d, \
     \"agg_ns_per_req\": %d,\n\
    \                   \"parks\": %d, \"wakeups\": %d, \"signals\": %d },\n\
    \      \"read_ratio_x100\": %d,\n\
    \      \"agg_ratio_x100\": %d }"
    conns base.r_read_p50 base.r_read_p99 base.r_agg ev.r_read_p50 ev.r_read_p99
    ev.r_agg ev.r_parks ev.r_wakeups ev.r_signals
    (ratio_x100 base.r_read_p50 ev.r_read_p50)
    (ratio_x100 base.r_agg ev.r_agg)

let run () =
  Bench_util.header
    (Printf.sprintf
       "Event reactor vs spin-yield serve path: %d requests over %s connections"
       (active * reqs)
       (String.concat "/" (List.map string_of_int conn_counts)));
  let rows =
    List.map
      (fun conns -> (conns, measure Spin conns, measure Evented conns))
      conn_counts
  in
  Bench_util.row4 "metric" "baseline" "reactor" "ratio";
  Bench_util.hr ();
  List.iter
    (fun (conns, base, ev) ->
      let tag name = Printf.sprintf "%s @ %dk conns" name (conns / 1000) in
      Bench_util.row4 (tag "read phase p50") (Bench_util.ns base.r_read_p50)
        (Bench_util.ns ev.r_read_p50)
        (Bench_util.ratio
           (float_of_int base.r_read_p50 /. float_of_int ev.r_read_p50));
      Bench_util.row4 (tag "read phase p99") (Bench_util.ns base.r_read_p99)
        (Bench_util.ns ev.r_read_p99)
        (Bench_util.ratio
           (float_of_int base.r_read_p99 /. float_of_int ev.r_read_p99));
      Bench_util.row4 (tag "sim per request") (Bench_util.ns base.r_agg)
        (Bench_util.ns ev.r_agg)
        (Bench_util.ratio (float_of_int base.r_agg /. float_of_int ev.r_agg));
      Bench_util.row4 (tag "wall clock (run)")
        (Printf.sprintf "%.1f ms" (base.r_wall *. 1e3))
        (Printf.sprintf "%.1f ms" (ev.r_wall *. 1e3))
        (Bench_util.ratio (base.r_wall /. ev.r_wall));
      Bench_util.row4 (tag "reactor parks/wakes") "-"
        (Printf.sprintf "%d / %d" ev.r_parks ev.r_wakeups)
        "")
    rows;
  print_endline
    "  (wall clock is this host; everything else is simulated and lands in";
  print_endline "   the byte-stable artifact below)";
  (* The gates.  Simulated ratios are deterministic, so they are hard
     failures; the wall gate applies at the largest scale, where the
     O(conns)-per-rotation spin tax dwarfs host noise. *)
  List.iter
    (fun (conns, (base : result), (ev : result)) ->
      if ratio_x100 base.r_read_p50 ev.r_read_p50 < 200 then
        failwith
          (Printf.sprintf "bench reactor: read ratio < 2x at %d conns (%d vs %d)"
             conns base.r_read_p50 ev.r_read_p50);
      if ratio_x100 base.r_agg ev.r_agg < 200 then
        failwith
          (Printf.sprintf
             "bench reactor: aggregate ratio < 2x at %d conns (%d vs %d)" conns
             base.r_agg ev.r_agg);
      if ev.r_parks = 0 then
        failwith "bench reactor: evented run never parked a fiber";
      (* Non-degenerate tail: under the skewed mix the p99 sample must
         come from a larger class than the p50 sample, in both modes.
         If they are equal the mix (or the percentile rank) broke and
         the tail number is measuring nothing. *)
      if base.r_read_p99 <= base.r_read_p50 || ev.r_read_p99 <= ev.r_read_p50 then
        failwith
          (Printf.sprintf
             "bench reactor: degenerate percentiles at %d conns (baseline \
              p50=%d p99=%d, reactor p50=%d p99=%d)"
             conns base.r_read_p50 base.r_read_p99 ev.r_read_p50 ev.r_read_p99))
    rows;
  (match rows with
  | (_, b1, e1) :: (_ :: _ as rest) ->
      (* Idle connections charge zero simulated cost: per-request numbers
         must not move with the idle herd, in either mode. *)
      List.iter
        (fun (conns, (b : result), (e : result)) ->
          if b.r_agg <> b1.r_agg || e.r_agg <> e1.r_agg then
            failwith
              (Printf.sprintf
                 "bench reactor: idle connections leaked simulated cost at %d \
                  conns"
                 conns))
        rest
  | _ -> ());
  (match List.rev rows with
  | (conns, (base : result), (ev : result)) :: _ when conns >= 10_000 ->
      if base.r_wall < ev.r_wall *. 2.0 then
        failwith
          (Printf.sprintf
             "bench reactor: wall ratio < 2x at %d conns (%.1f ms vs %.1f ms)"
             conns (base.r_wall *. 1e3) (ev.r_wall *. 1e3))
  | _ -> ());
  (let oc = open_out "BENCH_reactor.json" in
   Printf.fprintf oc
     "{\n\
     \  \"requests\": %d,\n\
     \  \"active_conns\": %d,\n\
     \  \"request_mix\": { \"seed\": %d, \"small\": %d, \"medium\": %d, \
      \"large\": %d, \"response_bytes\": %d },\n\
     \  \"scales\": [\n%s\n  ],\n\
     \  \"simulated\": true\n\
      }\n"
     (active * reqs) active mix_seed
     (count_shape Bench_util.shape_small)
     (count_shape Bench_util.shape_medium)
     (count_shape Bench_util.shape_large)
     (Bytes.length resp)
     (String.concat ",\n" (List.map conns_json rows));
   close_out oc;
   print_endline "  wrote BENCH_reactor.json");
  print_newline ()
