(* Fault-hook overhead: the injection hooks sit on the hot paths of every
   channel operation and frame allocation, so they must cost nothing when
   no plan is attached and next to nothing when a plan is armed with a 0%
   rate (the hook rolls its rule table but never fires).  Wall-clock, so
   numbers vary by host; the ratio is the point. *)

module Fault_plan = Wedge_fault.Fault_plan
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan

let iters = 50_000

(* One iteration = client write + server read + server write + client read:
   four hook crossings per round trip. *)
let roundtrips ?faults n =
  Fiber.run (fun () ->
      let a, b = Chan.pair ?faults () in
      Fiber.spawn (fun () ->
          for _ = 1 to n do
            ignore (Chan.read b 64);
            Chan.write_string b "pong"
          done);
      for _ = 1 to n do
        Chan.write_string a "ping";
        ignore (Chan.read a 64)
      done;
      Chan.close a;
      Chan.close b)

let zero_rate_plan () =
  let p = Fault_plan.create ~seed:1 () in
  Fault_plan.rule p ~site:"chan.read" ~prob:0. [ Fault_plan.Reset ];
  Fault_plan.rule p ~site:"chan.write" ~prob:0. [ Fault_plan.Reset ];
  p

let run () =
  Bench_util.header "Fault-injection hook overhead (wall clock, this host)";
  let (), base = Bench_util.wall_time (fun () -> roundtrips iters) in
  let plan = zero_rate_plan () in
  let (), hooked = Bench_util.wall_time (fun () -> roundtrips ~faults:plan iters) in
  let per_op s = s *. 1e9 /. float_of_int (iters * 4) in
  Bench_util.row3 "configuration" "ns/chan op" "overhead";
  Bench_util.hr ();
  Bench_util.row3 "no fault plan" (Printf.sprintf "%.1f" (per_op base)) "-";
  Bench_util.row3 "armed plan, 0% rate"
    (Printf.sprintf "%.1f" (per_op hooked))
    (Printf.sprintf "%+.1f%%" ((hooked -. base) /. base *. 100.));
  Printf.printf "  (%d round trips; a plan at 0%% never advances the PRNG,\n" iters;
  print_endline "   so the hook is a hash lookup plus an op counter)";
  print_newline ()
