(* Fault-hook overhead: the injection hooks sit on the hot paths of every
   channel operation and frame allocation, so they must cost nothing when
   no plan is attached and next to nothing when a plan is armed with a 0%
   rate (the hook rolls its rule table but never fires).  Wall-clock, so
   numbers vary by host; the ratio is the point. *)

module Fault_plan = Wedge_fault.Fault_plan
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Fd_table = Wedge_kernel.Fd_table

let iters = 50_000

(* One iteration = client write + server read + server write + client read:
   four hook crossings per round trip. *)
let roundtrips ?faults ?capacity n =
  Fiber.run (fun () ->
      let a, b = Chan.pair ?faults ?capacity () in
      Fiber.spawn (fun () ->
          for _ = 1 to n do
            ignore (Chan.read b 64);
            Chan.write_string b "pong"
          done);
      for _ = 1 to n do
        Chan.write_string a "ping";
        ignore (Chan.read a 64)
      done;
      Chan.close a;
      Chan.close b)

(* Same ping/pong, but the server side reads through the guard's
   deadline-aware endpoint (no deadlines armed — the common fast path). *)
let guarded_roundtrips n =
  Fiber.run (fun () ->
      let a, b = Chan.pair () in
      let g = Guard.create ~max_conns:1 () in
      let c =
        match Guard.admit g b with Guard.Admitted c -> c | _ -> assert false
      in
      let ep = Guard.endpoint c in
      Fiber.spawn (fun () ->
          for _ = 1 to n do
            ignore (ep.Fd_table.ep_read 64);
            ep.Fd_table.ep_write (Bytes.of_string "pong")
          done);
      for _ = 1 to n do
        Chan.write_string a "ping";
        ignore (Chan.read a 64)
      done;
      Guard.release c;
      Chan.close a;
      Chan.close b)

let zero_rate_plan () =
  let p = Fault_plan.create ~seed:1 () in
  Fault_plan.rule p ~site:"chan.read" ~prob:0. [ Fault_plan.Reset ];
  Fault_plan.rule p ~site:"chan.write" ~prob:0. [ Fault_plan.Reset ];
  p

let run () =
  Bench_util.header
    "Fault-injection and resource-governance hook overhead (wall clock, this host)";
  let (), base = Bench_util.wall_time (fun () -> roundtrips iters) in
  let plan = zero_rate_plan () in
  let (), hooked = Bench_util.wall_time (fun () -> roundtrips ~faults:plan iters) in
  let (), bounded = Bench_util.wall_time (fun () -> roundtrips ~capacity:1024 iters) in
  let (), guarded = Bench_util.wall_time (fun () -> guarded_roundtrips iters) in
  let per_op s = s *. 1e9 /. float_of_int (iters * 4) in
  let overhead s = Printf.sprintf "%+.1f%%" ((s -. base) /. base *. 100.) in
  Bench_util.row3 "configuration" "ns/chan op" "overhead";
  Bench_util.hr ();
  Bench_util.row3 "no fault plan" (Printf.sprintf "%.1f" (per_op base)) "-";
  Bench_util.row3 "armed plan, 0% rate"
    (Printf.sprintf "%.1f" (per_op hooked))
    (overhead hooked);
  Bench_util.row3 "bounded channel (cap 1024)"
    (Printf.sprintf "%.1f" (per_op bounded))
    (overhead bounded);
  Bench_util.row3 "guard endpoint, no deadline"
    (Printf.sprintf "%.1f" (per_op guarded))
    (overhead guarded);
  Printf.printf "  (%d round trips; a plan at 0%% never advances the PRNG,\n" iters;
  print_endline "   so the hook is a hash lookup plus an op counter; the";
  print_endline "   watermark check and the guard's cut/overdue tests add";
  print_endline "   a few comparisons per op)";
  (let oc = open_out "BENCH_guard.json" in
   Printf.fprintf oc
     "{\n\
     \  \"iters\": %d,\n\
     \  \"ops_per_iter\": 4,\n\
     \  \"baseline_ns_per_op\": %.2f,\n\
     \  \"fault_hook_ns_per_op\": %.2f,\n\
     \  \"bounded_channel_ns_per_op\": %.2f,\n\
     \  \"guard_endpoint_ns_per_op\": %.2f\n\
      }\n"
     iters (per_op base) (per_op hooked) (per_op bounded) (per_op guarded);
   close_out oc;
   print_endline "  wrote BENCH_guard.json");
  print_newline ()
