(** Table formatting and measurement helpers shared by the benchmark
    harness. *)

val hr : unit -> unit
(** Print a horizontal rule. *)

val header : string -> unit
(** Experiment banner. *)

val row3 : string -> string -> string -> unit
(** Aligned three-column row. *)

val row4 : string -> string -> string -> string -> unit

val us : int -> string
(** Nanoseconds rendered as microseconds. *)

val ns : int -> string
val ms : int -> string
val ratio : float -> string

val sim_time : Wedge_kernel.Kernel.t -> (unit -> 'a) -> 'a * int
(** Run under the simulated clock, returning elapsed simulated ns. *)

val wall_time : (unit -> 'a) -> 'a * float
(** Wall-clock seconds (best of three runs). *)

val wall_once : (unit -> 'a) -> 'a * float

val percentile : int list -> float -> int
(** [percentile sorted p] picks rank [ceil (p * (n-1))] from an already
    sorted sample list (clamped; 0 on an empty list).  The one percentile
    definition every artifact in this repo uses. *)

(** {2 Skewed request mix}

    A uniform request shape makes p50 == p99 — tail regressions become
    invisible.  These helpers give load harnesses a deterministic
    long-tailed mix: 90% small / 9% medium / 1% large, stratified (exact
    counts, every class represented) and shuffled by a seeded local LCG
    so the stream is identical across hosts and OCaml versions. *)

type shape = { sh_chunks : int; sh_chunk_bytes : int }

val shape_small : shape  (** 8 chunks x 8 B = 64 B *)

val shape_medium : shape  (** 16 chunks x 32 B = 512 B *)

val shape_large : shape  (** 64 chunks x 64 B = 4 KiB *)

val shape_bytes : shape -> int
val shape_label : shape -> string

val skewed_classes : seed:int -> n:int -> shape array
(** Per-connection shapes for a population of [n] connections. *)
