(* Spawn-cost scaling: fresh sthread boot vs recycled-callgate reuse vs
   pooled-snapshot stamp, as the parent image grows (the Figure 7/8 cost
   story, extended with the snapshot pool).

   Fresh boot pays the fork-priced copy — per-PTE and per-fd — so its
   cost scales with address-space size.  A recycled callgate dodges
   creation entirely but only for the callgate's own body.  A pooled
   stamp re-maps the frozen image in one flat [pool_stamp] charge, so a
   full private compartment costs the same at 60 pages as at 600: this
   is what makes restart-intensity budgets independent of image size.

   Everything runs on the simulated clock under the default (paper-
   shaped) cost model, so BENCH_spawn.json is byte-stable.
   [WEDGE_SPAWN_SMOKE=1] shrinks the size sweep for CI (the gates still
   check flatness and scaling across the endpoints). *)

module Kernel = Wedge_kernel.Kernel
module W = Wedge_core.Wedge
open Bench_util

let smoke =
  match Sys.getenv_opt "WEDGE_SPAWN_SMOKE" with Some "1" -> true | _ -> false

let image_sizes = if smoke then [ 60; 600 ] else [ 60; 150; 300; 600 ]

type point = {
  pages : int;
  fresh_ns : int;
  recycled_ns : int;
  pooled_ns : int;
}

let measure pages =
  let k = Kernel.create () in
  let app = W.create_app ~image_pages:pages k in
  W.boot app;
  let main = W.main_ctx app in
  let noop_body _ _ = 0 in
  (* Fresh: create + run + join a private compartment. *)
  let fresh_ns =
    snd
      (sim_time k (fun () ->
           let h = W.sthread_create main (W.sc_create ()) noop_body 0 in
           ignore (W.sthread_join main h)))
  in
  (* Recycled callgate: steady-state reuse (first call pays creation). *)
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add ~recycled:true main sc ~name:"bench.spawn.noop"
      ~entry:(fun _ ~trusted:_ ~arg -> arg)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        ignore (W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0);
        snd (sim_time k (fun () -> ignore (W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0))))
      0
  in
  let recycled_ns = W.sthread_join main h in
  (* Pooled: freeze once, then stamp a full private compartment. *)
  let pool = W.Pool.freeze ~name:"bench.pool" main (W.sc_create ()) in
  ignore (W.Pool.stamp main pool noop_body 0);
  let pooled_ns =
    snd (sim_time k (fun () -> ignore (W.Pool.stamp main pool noop_body 0)))
  in
  { pages; fresh_ns; recycled_ns; pooled_ns }

let run () =
  header "Spawn scaling: fresh boot vs recycled callgate vs pooled stamp";
  let points = List.map measure image_sizes in
  row4 "image (pages)" "fresh" "recycled" "pooled";
  hr ();
  List.iter
    (fun p -> row4 (string_of_int p.pages) (us p.fresh_ns) (us p.recycled_ns) (us p.pooled_ns))
    points;
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  Printf.printf
    "shape: fresh %s -> %s (scales with pages); pooled %s -> %s (flat)\n"
    (us first.fresh_ns) (us last.fresh_ns) (us first.pooled_ns) (us last.pooled_ns);
  (* The gates CI relies on: a stamp is flat as the image grows, and
     never loses to a fresh boot. *)
  if last.pooled_ns <> first.pooled_ns then
    failwith "bench spawn: pooled stamp cost is not flat across image sizes";
  List.iter
    (fun p ->
      if p.pooled_ns > p.fresh_ns then
        failwith
          (Printf.sprintf "bench spawn: pooled (%d ns) beats fresh (%d ns) at %d pages"
             p.pooled_ns p.fresh_ns p.pages))
    points;
  if last.fresh_ns <= first.fresh_ns then
    failwith "bench spawn: fresh boot cost failed to scale with image size";
  (let oc = open_out "BENCH_spawn.json" in
   Printf.fprintf oc "{\n  \"points\": [\n";
   List.iteri
     (fun i p ->
       Printf.fprintf oc
         "    { \"image_pages\": %d, \"fresh_ns\": %d, \"recycled_ns\": %d, \"pooled_ns\": %d }%s\n"
         p.pages p.fresh_ns p.recycled_ns p.pooled_ns
         (if i = List.length points - 1 then "" else ","))
     points;
   Printf.fprintf oc "  ],\n  \"pooled_flat\": true,\n  \"simulated\": true\n}\n";
   close_out oc;
   print_endline "  wrote BENCH_spawn.json");
  print_newline ()
