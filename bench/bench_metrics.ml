(* §5.1 / §5.2 partitioning metrics: how much code runs privileged (inside
   callgates) versus unprivileged (inside sthreads), and how much code the
   partitioning itself required.  Counts are taken from this repository's
   actual sources when available (run from the repo root), split on the
   section markers inside the partitioned servers; otherwise the recorded
   constants are used. *)

open Bench_util

let count_lines path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  end
  else None

(* Lines of [path] from the line containing [from_marker] (or the start) up
   to the line containing [to_marker] (or the end). *)
let count_section path ?from_marker ?to_marker () =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = Array.of_list (List.rev !lines) in
    let find marker dflt =
      match marker with
      | None -> dflt
      | Some m ->
          let found = ref dflt in
          Array.iteri
            (fun i l ->
              if !found = dflt then
                let ml = String.length m and ll = String.length l in
                let rec go j = j + ml <= ll && (String.sub l j ml = m || go (j + 1)) in
                if go 0 then found := i)
            lines;
          !found
    in
    let a = find from_marker 0 in
    let b = find to_marker (Array.length lines) in
    Some (max 0 (b - a))
  end

type side = Trusted | Untrusted

let classify parts =
  let total side =
    List.fold_left
      (fun acc (s, n) -> if s = side then acc + Option.value n ~default:0 else acc)
      0 parts
  in
  (total Trusted, total Untrusted)

let httpd_parts () =
  [
    (* callgate bodies + the session-state they guard *)
    ( Trusted,
      count_section "lib/httpd/httpd_mitm.ml" ~to_marker:"the handshake sthread's view" () );
    (Trusted, count_lines "lib/httpd/conn_state.ml");
    (Trusted, count_lines "lib/tls/record.ml");
    (* master assembly is privileged *)
    (Trusted, count_section "lib/httpd/httpd_mitm.ml" ~from_marker:"master: one connection" ());
    (* the network-facing drivers *)
    ( Untrusted,
      count_section "lib/httpd/httpd_mitm.ml" ~from_marker:"the handshake sthread's view"
        ~to_marker:"master: one connection" () );
    (Untrusted, count_lines "lib/tls/handshake.ml");
    (Untrusted, count_lines "lib/tls/wire.ml");
    (Untrusted, count_lines "lib/httpd/http.ml");
  ]

let sshd_parts () =
  [
    (Trusted, count_section "lib/sshd/sshd_wedge.ml" ~to_marker:"the worker's view of the gates" ());
    (Trusted, count_lines "lib/sshd/skey.ml");
    (Trusted, count_lines "lib/sshd/pam.ml");
    ( Untrusted,
      count_section "lib/sshd/sshd_wedge.ml" ~from_marker:"the worker's view of the gates"
        ~to_marker:"master: one connection" () );
    (Untrusted, count_lines "lib/sshd/sshd_session.ml");
    (Untrusted, count_lines "lib/sshd/ssh_proto.ml");
  ]

let pop3_parts () =
  [
    (Trusted, count_section "lib/pop3/pop3_wedge.ml" ~to_marker:"the worker-side backend" ());
    ( Untrusted,
      count_section "lib/pop3/pop3_wedge.ml" ~from_marker:"the worker-side backend"
        ~to_marker:"master: assemble" () );
    (Untrusted, count_lines "lib/pop3/pop3_proto.ml");
  ]

let repo_total () =
  let dirs = [ "lib/sim"; "lib/kernel"; "lib/mem"; "lib/core"; "lib/crowbar"; "lib/crypto"; "lib/tls"; "lib/net"; "lib/pop3"; "lib/httpd"; "lib/sshd"; "lib/spec" ] in
  List.fold_left
    (fun acc d ->
      if Sys.file_exists d && Sys.is_directory d then
        Array.fold_left
          (fun acc f ->
            if Filename.check_suffix f ".ml" then
              acc + Option.value (count_lines (Filename.concat d f)) ~default:0
            else acc)
          acc (Sys.readdir d)
      else acc)
    0 dirs

(* Software-TLB translation counters for a representative partitioned
   workload: main writes a tagged segment, an sthread with a COW grant
   reads and dirties it.  Live per-sthread counters come from
   [W.tlb_stats]; dead sthreads' totals land in the kernel stats table at
   reap ("tlb.hit" / "tlb.miss" / "tlb.shootdown"). *)
let tlb_counters () =
  let module W = Wedge_core.Wedge in
  let module Kernel = Wedge_kernel.Kernel in
  let module Stats = Wedge_sim.Stats in
  let k = Kernel.create () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  let tag = W.tag_new ~name:"metrics" ~pages:4 main in
  let buf = W.smalloc main 8192 tag in
  for i = 0 to 1023 do
    W.write_u64 main (buf + (i * 8)) i
  done;
  W.boot app;
  let sc = W.sc_create () in
  W.sc_mem_add sc tag Wedge_kernel.Prot.COW;
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        let acc = ref 0 in
        for i = 0 to 1023 do
          acc := !acc + W.read_u64 ctx (buf + (i * 8))
        done;
        for i = 0 to 1023 do
          W.write_u64 ctx (buf + (i * 8)) (!acc + i)
        done;
        0)
      0
  in
  ignore (W.sthread_join main h);
  let m = W.tlb_stats main in
  header "Software-TLB translation counters (sim workload)";
  Printf.printf "%-34s %10s %10s %12s\n" "address space" "hits" "misses" "shootdowns";
  Printf.printf "%-34s %10d %10d %12d\n" "main (live)" m.W.tlb_hits m.W.tlb_misses
    m.W.tlb_shootdowns;
  let g key = Stats.get k.Kernel.stats key in
  Printf.printf "%-34s %10d %10d %12d\n" "reaped sthreads (kernel stats)" (g "tlb.hit")
    (g "tlb.miss") (g "tlb.shootdown");
  print_newline ()

(* Host-time cost of the observability layer on a hot path: the same
   engine read/write loop with tracing disarmed (one predicted branch per
   instrumented site) and armed (ring-buffer stores).  The disarmed
   number is the one that matters — it is what every production-shaped
   run pays for having the instrumentation compiled in. *)
let tracing_overhead () =
  let module W = Wedge_core.Wedge in
  let module Kernel = Wedge_kernel.Kernel in
  let module Trace = Wedge_sim.Trace in
  let mk () =
    let k = Kernel.create () in
    let app = W.create_app k in
    let main = W.main_ctx app in
    let tag = W.tag_new ~name:"bench" ~pages:4 main in
    let buf = W.smalloc main 8192 tag in
    W.boot app;
    (k, main, buf)
  in
  let iters = 200_000 in
  let loop main buf () =
    for i = 0 to iters - 1 do
      W.write_u64 main (buf + (i land 1023) * 8) i;
      ignore (W.read_u64 main (buf + ((i + 7) land 1023) * 8))
    done
  in
  let k1, main1, buf1 = mk () in
  Trace.disarm k1.Kernel.trace;
  let (), off = Bench_util.wall_time (loop main1 buf1) in
  let k2, main2, buf2 = mk () in
  Trace.arm ~capacity:(1 lsl 16) k2.Kernel.trace;
  let (), on = Bench_util.wall_time (loop main2 buf2) in
  (* The recording site itself, measured directly: disarmed is the branch
     every permanently-instrumented call pays; armed is a ring store. *)
  let clock = Wedge_sim.Clock.create () in
  let tr = Trace.create ~capacity:(1 lsl 16) ~clock () in
  let site_iters = 2_000_000 in
  let site_loop () =
    for _ = 1 to site_iters do
      Trace.instant tr ~name:"bench.site" ~pid:1
    done
  in
  let (), site_off = Bench_util.wall_time site_loop in
  Trace.arm tr;
  let (), site_on = Bench_util.wall_time site_loop in
  header "Tracing overhead (wall clock, this host)";
  Printf.printf "%-44s %12s %12s\n" "" "time" "per op";
  Printf.printf "%-44s %9.1f ms %9.1f ns\n" "engine r/w loop, tracing disarmed"
    (off *. 1e3)
    (off *. 1e9 /. float_of_int (2 * iters));
  Printf.printf "%-44s %9.1f ms %9.1f ns\n"
    "engine r/w loop, tracing armed (hits untraced)" (on *. 1e3)
    (on *. 1e9 /. float_of_int (2 * iters));
  Printf.printf "%-44s %9.1f ms %9.2f ns\n" "Trace.instant, disarmed (the one branch)"
    (site_off *. 1e3)
    (site_off *. 1e9 /. float_of_int site_iters);
  Printf.printf "%-44s %9.1f ms %9.2f ns\n" "Trace.instant, armed (ring store)"
    (site_on *. 1e3)
    (site_on *. 1e9 /. float_of_int site_iters);
  print_newline ()

(* What an armed-but-idle reactor costs off the hot path: the scheduler
   hook when no simulated time passed (one clock comparison), the hook
   with the clock moving over an empty timer wheel, and the channel
   fast path with and without a reactor attached (producers signal
   unconditionally; with no waiters the signal is one branch).  These
   are the taxes every run pays for having the reactor compiled in —
   they must stay in low single-digit nanoseconds. *)
let reactor_overhead () =
  let module Clock = Wedge_sim.Clock in
  let module Reactor = Wedge_sim.Reactor in
  let module Chan = Wedge_net.Chan in
  let clock = Clock.create () in
  let r = Reactor.create ~clock () in
  let hook = Reactor.hook r in
  let iters = 2_000_000 in
  let (), quiet =
    Bench_util.wall_time (fun () ->
        for _ = 1 to iters do
          hook ()
        done)
  in
  let (), moving =
    Bench_util.wall_time (fun () ->
        for _ = 1 to iters do
          Clock.charge clock 1;
          hook ()
        done)
  in
  let chan_iters = 200_000 in
  let ping a b () =
    for _ = 1 to chan_iters do
      Chan.write_string a "x";
      ignore (Chan.read b 1)
    done
  in
  let a1, b1 = Chan.pair () in
  let (), detached = Bench_util.wall_time (ping a1 b1) in
  let a2, b2 = Chan.pair () in
  Chan.attach_reactor r b2;
  let (), attached = Bench_util.wall_time (ping a2 b2) in
  header "Reactor off-path overhead (wall clock, this host)";
  Printf.printf "%-44s %12s %12s\n" "" "time" "per op";
  Printf.printf "%-44s %9.1f ms %9.2f ns\n" "scheduler hook, clock unmoved (one compare)"
    (quiet *. 1e3)
    (quiet *. 1e9 /. float_of_int iters);
  Printf.printf "%-44s %9.1f ms %9.2f ns\n" "scheduler hook, clock moving (empty wheel)"
    (moving *. 1e3)
    (moving *. 1e9 /. float_of_int iters);
  Printf.printf "%-44s %9.1f ms %9.1f ns\n" "chan write+read ping, no reactor"
    (detached *. 1e3)
    (detached *. 1e9 /. float_of_int (2 * chan_iters));
  Printf.printf "%-44s %9.1f ms %9.1f ns\n"
    "chan write+read ping, attached (no waiters)" (attached *. 1e3)
    (attached *. 1e9 /. float_of_int (2 * chan_iters));
  print_newline ()

(* What the correctness harness costs: a full invariant sweep (refcounts,
   rlimits, TLBs, smalloc walks, guards) measured directly against a
   booted application, the differential reference model's lockstep tax on
   the engine r/w loop, and end-to-end exploration throughput. *)
let oracle_overhead () =
  let module W = Wedge_core.Wedge in
  let module Kernel = Wedge_kernel.Kernel in
  let module Oracle = Wedge_check.Oracle in
  let module Refvm = Wedge_check.Refvm in
  let module Explore = Wedge_check.Explore in
  (* Direct cost of one Oracle.check against a booted app. *)
  let k = Kernel.create ~costs:Wedge_sim.Cost_model.free () in
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main = W.main_ctx app in
  let tag = W.tag_new ~name:"bench.oracle" ~pages:4 main in
  ignore (W.smalloc main 256 tag);
  let oracle = Oracle.create k in
  Oracle.set_app oracle app;
  let sweeps = 2_000 in
  let (), sweep_t =
    Bench_util.wall_time (fun () ->
        for _ = 1 to sweeps do
          Oracle.check oracle
        done)
  in
  (* Lockstep tax of the differential model on the engine r/w loop. *)
  let buf = W.smalloc main 8192 tag in
  let iters = 100_000 in
  let loop () =
    for i = 0 to iters - 1 do
      W.write_u64 main (buf + (i land 1023) * 8) i;
      ignore (W.read_u64 main (buf + ((i + 7) land 1023) * 8))
    done
  in
  let (), plain = Bench_util.wall_time loop in
  let refvm = Refvm.create k in
  Refvm.arm refvm;
  let (), lockstep = Bench_util.wall_time loop in
  Refvm.disarm refvm;
  (* End-to-end exploration throughput on the pop3 chaos scenario. *)
  let schedules = 10 in
  let explore diff () =
    match Explore.explore ~schedules ~diff ~scenario:"pop3" ~seed:1 () with
    | Explore.Passed _ -> ()
    | Explore.Failed _ as v -> failwith (Explore.verdict_to_string v)
  in
  let (), ex_plain = Bench_util.wall_time (explore false) in
  let (), ex_diff = Bench_util.wall_time (explore true) in
  header "Correctness-harness overhead (wall clock, this host)";
  Printf.printf "%-44s %12s %12s\n" "" "time" "per op";
  Printf.printf "%-44s %9.1f ms %9.1f us\n" "Oracle.check full sweep (booted app)"
    (sweep_t *. 1e3)
    (sweep_t *. 1e6 /. float_of_int sweeps);
  Printf.printf "%-44s %9.1f ms %9.1f ns\n" "engine r/w loop, no recorder" (plain *. 1e3)
    (plain *. 1e9 /. float_of_int (2 * iters));
  Printf.printf "%-44s %9.1f ms %9.1f ns\n" "engine r/w loop, differential lockstep"
    (lockstep *. 1e3)
    (lockstep *. 1e9 /. float_of_int (2 * iters));
  Printf.printf "%-44s %9.1f ms %9.1f ms\n"
    (Printf.sprintf "explore pop3 x%d schedules, oracles on" schedules)
    (ex_plain *. 1e3)
    (ex_plain *. 1e3 /. float_of_int schedules);
  Printf.printf "%-44s %9.1f ms %9.1f ms\n"
    (Printf.sprintf "explore pop3 x%d schedules, + differential" schedules)
    (ex_diff *. 1e3)
    (ex_diff *. 1e3 /. float_of_int schedules);
  print_newline ()

(* The metrics-registry view of the snapshot pool: freeze one image,
   stamp two workers out of it and discard, then read the registry
   counters and gauges back — the surface an operator scrapes.  All
   simulated, so the numbers are deterministic. *)
let pool_registry () =
  let module W = Wedge_core.Wedge in
  let module Kernel = Wedge_kernel.Kernel in
  let module Metrics = Wedge_sim.Metrics in
  let module Fiber = Wedge_sim.Fiber in
  let k = Kernel.create () in
  let app = W.create_app ~image_pages:60 k in
  W.boot app;
  let main = W.main_ctx app in
  Fiber.run (fun () ->
      let pool =
        W.Pool.freeze ~name:"metrics.pool"
          ~warm:(fun ctx -> ignore (W.malloc ctx 64))
          main (W.sc_create ())
      in
      ignore (W.sthread_join main (W.Pool.stamp main pool (fun _ x -> x) 0));
      ignore (W.sthread_join main (W.Pool.stamp main pool (fun _ x -> x) 0));
      let keep = W.Pool.freeze ~name:"metrics.kept" main (W.sc_create ()) in
      ignore keep;
      W.Pool.discard main pool);
  let m = Metrics.create () in
  W.register_metrics m app;
  header "Snapshot-pool registry counters (sim workload)";
  List.iter
    (fun key -> Printf.printf "%-34s %10d\n" key (Metrics.get m key))
    [ "pool.freezes"; "pool.stamps"; "pool.hits"; "pool.images"; "pool.frozen_frames" ];
  print_newline ()

let run () =
  header "Partitioning metrics (§5.1 / §5.2) - trusted vs untrusted code";
  if not (Sys.file_exists "lib/httpd/httpd_mitm.ml") then
    print_endline "(sources not found: run from the repository root for live counts)"
  else begin
    let ht, hu = classify (httpd_parts ()) in
    let st, su = classify (sshd_parts ()) in
    Printf.printf "%-22s %12s %12s %22s\n" "application" "callgates" "sthreads" "trusted fraction";
    Printf.printf "%-22s %9d LoC %9d LoC %15.0f%% (paper 26%%)\n" "httpd (this repo)" ht hu
      (100. *. float_of_int ht /. float_of_int (ht + hu));
    Printf.printf "%-22s %12s %12s %22s\n" "  paper Apache/OpenSSL" "~16K LoC" "~45K LoC" "26% (-2/3 trusted)";
    Printf.printf "%-22s %9d LoC %9d LoC %15.0f%% (paper 19%%)\n" "sshd (this repo)" st su
      (100. *. float_of_int st /. float_of_int (st + su));
    Printf.printf "%-22s %12s %12s %22s\n" "  paper OpenSSH" "~3.3K LoC" "~14K LoC" "19% (-75% trusted)";
    let pt, pu = classify (pop3_parts ()) in
    Printf.printf "%-22s %9d LoC %9d LoC %15.0f%% (the paper's 2 design)\n" "pop3 (this repo)" pt pu
      (100. *. float_of_int pt /. float_of_int (pt + pu));
    let partition_delta =
      Option.value (count_lines "lib/httpd/httpd_mitm.ml") ~default:0
      + Option.value (count_lines "lib/httpd/conn_state.ml") ~default:0
      + Option.value (count_lines "lib/sshd/sshd_wedge.ml") ~default:0
    in
    let total = repo_total () in
    Printf.printf
      "\nlines written to express the partitionings: %d of %d total (%.1f%%)\n"
      partition_delta total
      (100. *. float_of_int partition_delta /. float_of_int total);
    Printf.printf "paper: Apache ~1700 changed lines (0.5%%), OpenSSH 564 changed lines (2%%)\n"
  end;
  tlb_counters ();
  pool_registry ();
  tracing_overhead ();
  reactor_overhead ();
  oracle_overhead ()
