module Clock = Wedge_sim.Clock
module Kernel = Wedge_kernel.Kernel

let hr () = print_endline (String.make 78 '-')

let header title =
  print_newline ();
  hr ();
  Printf.printf "%s\n" title;
  hr ()

let row3 a b c = Printf.printf "%-34s %20s %20s\n" a b c
let row4 a b c d = Printf.printf "%-30s %14s %14s %16s\n" a b c d
let us v = Printf.sprintf "%.1f us" (float_of_int v /. 1e3)
let ns v = Printf.sprintf "%d ns" v
let ms v = Printf.sprintf "%.2f ms" (float_of_int v /. 1e6)
let ratio r = Printf.sprintf "%.1fx" r

let sim_time (k : Kernel.t) f =
  let t0 = Clock.now k.Kernel.clock in
  let v = f () in
  (v, Clock.now k.Kernel.clock - t0)

let wall_once f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let wall_time f =
  let v, t1 = wall_once f in
  let _, t2 = wall_once f in
  let _, t3 = wall_once f in
  (v, min t1 (min t2 t3))

(* Percentile by rank on an already-sorted sample list: index
   ceil(p * (n-1)), clamped.  Hoisted here because bench_reactor and
   bench_recovery had drifted their own copies of the same formula; the
   unit tests in test_bench pin the rank arithmetic at the boundaries. *)
let percentile sorted p =
  match sorted with
  | [] -> 0
  | l ->
      let a = Array.of_list l in
      let n = Array.length a in
      let idx = int_of_float (ceil (p *. float_of_int (n - 1))) in
      a.(max 0 (min (n - 1) idx))

(* A skewed request mix.  A uniform request shape makes every sample
   identical, so p50 == p99 and a latency regression in the tail is
   invisible — the measurement bug the reactor bench shipped with.  Real
   traffic is long-tailed; this is the smallest honest model of it:
   90% small requests, 9% medium, 1% large (rounded up so every class
   is represented even in tiny populations). *)
type shape = { sh_chunks : int; sh_chunk_bytes : int }

let shape_small = { sh_chunks = 8; sh_chunk_bytes = 8 }
let shape_medium = { sh_chunks = 16; sh_chunk_bytes = 32 }
let shape_large = { sh_chunks = 64; sh_chunk_bytes = 64 }
let shape_bytes s = s.sh_chunks * s.sh_chunk_bytes

let shape_label s =
  if s == shape_large then "large"
  else if s == shape_medium then "medium"
  else "small"

(* Stratified assignment: exact class counts (no sampling noise), then a
   Fisher-Yates shuffle under a local LCG so placement is still varied.
   No [Random]: the stream must be identical across hosts and OCaml
   versions, because the shapes feed simulated costs that land in
   byte-stable artifacts. *)
let skewed_classes ~seed ~n =
  if n <= 0 then [||]
  else begin
    let n_large = min n (max 1 (n / 100)) in
    let n_medium = min (n - n_large) (max 2 (9 * n / 100)) in
    let a = Array.make n shape_small in
    for i = 0 to n_large - 1 do
      a.(i) <- shape_large
    done;
    for i = n_large to n_large + n_medium - 1 do
      a.(i) <- shape_medium
    done;
    let state = ref (((seed * 2654435761) + 1) land 0x3fffffff) in
    let next bound =
      state := ((!state * 1103515245) + 12345) land 0x3fffffff;
      !state mod bound
    in
    for i = n - 1 downto 1 do
      let j = next (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  end
