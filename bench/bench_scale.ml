(* bench -- scale: sharded multikernel scale-out under a churn load.

   The tentpole claim: N kernel shards are N parallel machines — each
   with its own physical memory, page tables, fd space, reactor and
   simulated clock — so a hashed connection stream completes in ~1/N
   the simulated makespan of a single kernel, at unchanged per-request
   cost.  The harness pushes a large population of connections (100k
   full, 2k smoke) through the real pop3 server stack behind the
   sharded front door, plus smaller httpd (TLS) and sshd (privsep
   login) sections, for shard counts 1 vs 4 (1 vs 2 in smoke).

   Load model: per shard, [window] concurrent client fibers drain that
   shard's hash-assigned connection list sequentially — bounded
   in-flight churn, like a load generator with a fixed open-connection
   budget.  Each pop3 connection draws its work from the seeded
   long-tailed mix in [Bench_util] (90% STAT / 9% LIST / 1% full
   RETR), so the latency distribution has a real tail and
   p999 >= p99 > p50 is asserted rather than assumed.  The same global
   mix is used at every shard count: identical work, divided N ways.

   While connections churn, a rotation fiber replaces a cluster-wide
   session-key gtag every [total/rotations] connections, deleting the
   previous one from a rotating shard — so the cross-shard TLB
   shootdown protocol runs under full load, and the bench asserts the
   exact count: rotations deletes x (N-1) peers each.

   Latency is sampled on each connection's home-shard clock around the
   whole exchange (connect to quit); per-shard throughput is the
   shard's clock span over its connection count; the cluster makespan
   is the slowest shard's span.  Everything in BENCH_scale.json is a
   simulated integer — byte-stable across runs and hosts.  Wall times
   go to stdout only.

   [WEDGE_SCALE_SMOKE=1] shrinks the population and shard counts for
   CI. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Clock = Wedge_sim.Clock
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Shard = Wedge_net.Shard
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module W = Wedge_core.Wedge
module Pop3_client = Wedge_pop3.Pop3_client
module Ssh_client = Wedge_sshd.Ssh_client

let smoke =
  match Sys.getenv_opt "WEDGE_SCALE_SMOKE" with Some "1" -> true | _ -> false

let shard_counts = if smoke then [ 1; 2 ] else [ 1; 4 ]
let max_shards = List.fold_left max 1 shard_counts
let pop3_conns = if smoke then 2_000 else 100_000
let httpd_conns = if smoke then 8 else 64
let sshd_conns = if smoke then 4 else 32
let window = 16
let rotations = if smoke then 8 else 32
let mix_seed = 23
let speedup_floor_x100 = if smoke then 130 else 200

(* The work class of pop3 connection [c], fixed before sharding so every
   shard count serves the identical population. *)
let pop3_mix = lazy (Bench_util.skewed_classes ~seed:mix_seed ~n:pop3_conns)

(* ------------------------------------------------------------------ *)
(* Generic churn driver                                                *)

type per_shard = { ps_sid : int; ps_conns : int; ps_span : int }

type row = {
  rw_shards : int;
  rw_conns : int;
  rw_p50 : int;
  rw_p99 : int;
  rw_p999 : int;
  rw_per_shard : per_shard list;
  rw_makespan : int;
  rw_xshoot : int;
}

(* Round-robin a connection list into at most [w] slices: the bounded
   in-flight window, deterministic in list order. *)
let slices w l =
  let n = min w (max 1 (List.length l)) in
  let buckets = Array.make n [] in
  List.iteri (fun i c -> buckets.(i mod n) <- c :: buckets.(i mod n)) l;
  Array.to_list (Array.map List.rev buckets)

let rotation_fiber fab ~served ~total ~done_ =
  Fiber.spawn (fun () ->
      let step = max 1 (total / rotations) in
      let prev = ref None in
      for r = 1 to rotations do
        Fiber.wait_until ~what:"scale rotation point" (fun () ->
            !served >= min total (r * step));
        let g = Shard.gtag_new ~name:(Printf.sprintf "sess-%d" r) ~pages:1 fab in
        (match !prev with
        | Some old when Shard.gtag_live old ->
            Shard.gtag_delete fab ~sid:(r mod Shard.n fab) old
        | _ -> ());
        prev := Some g
      done;
      (match !prev with
      | Some old when Shard.gtag_live old -> Shard.gtag_delete fab ~sid:0 old
      | _ -> ());
      done_ := true)

(* Run [total] connections through the front door: hash-assign each to
   its home shard, churn them through [window] client fibers per shard,
   rotate session gtags when [rotate], return the latency/throughput
   row. *)
let drive ~fab ~front ~serve ~run_conn ~total ~rotate =
  let n = Shard.n fab in
  let per_shard_conns = Array.make n [] in
  for c = total - 1 downto 0 do
    let sid = Shard.route fab ~key:(Printf.sprintf "conn-%06d" c) in
    per_shard_conns.(sid) <- c :: per_shard_conns.(sid)
  done;
  let samples = Array.make n [] in
  let served = ref 0 in
  let rot_done = ref (not rotate) in
  let spans = Array.make n 0 in
  Fiber.run ~on_idle:(Shard.idle fab) (fun () ->
      Shard.start fab;
      serve ();
      let t0 =
        Array.map
          (fun (s : Shard.shard) -> Clock.now s.Shard.kernel.Kernel.clock)
          (Shard.shards fab)
      in
      if rotate then rotation_fiber fab ~served ~total ~done_:rot_done;
      let remaining = ref 0 in
      Array.iteri
        (fun sid conns ->
          let clock = (Shard.shard fab sid).Shard.kernel.Kernel.clock in
          List.iter
            (fun slice ->
              incr remaining;
              Fiber.spawn (fun () ->
                  List.iter
                    (fun c ->
                      let s0 = Clock.now clock in
                      run_conn ~sid c;
                      samples.(sid) <- (Clock.now clock - s0) :: samples.(sid);
                      incr served)
                    slice;
                  decr remaining))
            (slices window conns))
        per_shard_conns;
      Fiber.wait_until ~what:"scale churn drained" (fun () ->
          !remaining = 0 && !served = total && !rot_done);
      Array.iteri
        (fun sid (s : Shard.shard) ->
          spans.(sid) <- Clock.now s.Shard.kernel.Kernel.clock - t0.(sid))
        (Shard.shards fab);
      Shard.front_drain front;
      Shard.stop fab);
  let all = List.sort compare (List.concat (Array.to_list samples)) in
  {
    rw_shards = n;
    rw_conns = total;
    rw_p50 = Bench_util.percentile all 0.50;
    rw_p99 = Bench_util.percentile all 0.99;
    rw_p999 = Bench_util.percentile all 0.999;
    rw_per_shard =
      List.init n (fun sid ->
          {
            ps_sid = sid;
            ps_conns = List.length per_shard_conns.(sid);
            ps_span = spans.(sid);
          });
    rw_makespan = Array.fold_left max 0 spans;
    rw_xshoot = Shard.cross_shard_shootdowns fab;
  }

(* ------------------------------------------------------------------ *)
(* Service sections                                                    *)

let pop3_section n_shards =
  let worlds =
    Array.init n_shards (fun i ->
        let k = Kernel.create ~costs:Cost_model.default ~shard:i () in
        Wedge_pop3.Pop3_env.install k Wedge_pop3.Pop3_env.default_users;
        let app = W.create_app ~image_pages:60 k in
        W.boot app;
        (k, app))
  in
  let fab = Shard.create worlds in
  let front =
    Shard.front ~costs:Cost_model.default ~backlog:64 ~max_conns:(2 * window) fab
  in
  let mains = Array.map (fun (_, app) -> W.main_ctx app) worlds in
  let mix = Lazy.force pop3_mix in
  let run_conn ~sid c =
    let cl = Pop3_client.connect (Chan.connect (Shard.front_listener front sid)) in
    let user = if c land 1 = 0 then "alice" else "bob" in
    let password = if c land 1 = 0 then "wonderland" else "builder" in
    if not (Pop3_client.login cl ~user ~password) then
      failwith "bench scale: pop3 login failed";
    (match Bench_util.shape_label mix.(c) with
    | "small" -> if Pop3_client.stat cl = None then failwith "bench scale: STAT failed"
    | "medium" ->
        if Pop3_client.list_mails cl = None then failwith "bench scale: LIST failed"
    | _ -> (
        match Pop3_client.list_mails cl with
        | Some l ->
            List.iter
              (fun (i, _) ->
                if Pop3_client.retr cl i = None then failwith "bench scale: RETR failed")
              l
        | None -> failwith "bench scale: LIST failed"));
    Pop3_client.quit cl
  in
  drive ~fab ~front
    ~serve:(fun () -> Wedge_pop3.Pop3_wedge.serve_sharded mains front)
    ~run_conn ~total:pop3_conns ~rotate:true

let httpd_section n_shards =
  let envs =
    Array.init n_shards (fun i ->
        let k = Kernel.create ~costs:Cost_model.default ~shard:i () in
        Wedge_httpd.Httpd_env.install ~image_pages:60 ~seed:(100 + i) k)
  in
  let fab =
    Shard.create
      (Array.map
         (fun e -> (W.kernel e.Wedge_httpd.Httpd_env.app, e.Wedge_httpd.Httpd_env.app))
         envs)
  in
  let front =
    Shard.front ~costs:Cost_model.default ~backlog:64 ~max_conns:(2 * window) fab
  in
  let run_conn ~sid c =
    let ep = Chan.connect (Shard.front_listener front sid) in
    match
      Wedge_httpd.Https_client.get
        ~rng:(Drbg.create ~seed:(1_000 + c))
        ~pinned:envs.(sid).Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" ep
    with
    | { Wedge_httpd.Https_client.response = Some r; _ }
      when r.Wedge_httpd.Http.status = 200 ->
        ()
    | _ -> failwith "bench scale: https get failed"
  in
  drive ~fab ~front
    ~serve:(fun () ->
      Wedge_httpd.Httpd_simple.serve_sharded ~max_request_bytes:4096 envs front)
    ~run_conn ~total:httpd_conns ~rotate:false

let sshd_section n_shards =
  let envs =
    Array.init n_shards (fun i ->
        let k = Kernel.create ~costs:Cost_model.default ~shard:i () in
        Wedge_sshd.Sshd_env.install ~image_pages:40 ~seed:(200 + i) k)
  in
  let fab =
    Shard.create
      (Array.map
         (fun e -> (W.kernel e.Wedge_sshd.Sshd_env.app, e.Wedge_sshd.Sshd_env.app))
         envs)
  in
  let front =
    Shard.front ~costs:Cost_model.default ~backlog:64 ~max_conns:(2 * window) fab
  in
  let run_conn ~sid c =
    let ep = Chan.connect (Shard.front_listener front sid) in
    match
      Ssh_client.login
        ~rng:(Drbg.create ~seed:(2_000 + c))
        ~pinned_rsa:envs.(sid).Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
        ~pinned_dsa:envs.(sid).Wedge_sshd.Sshd_env.host_dsa.Dsa.pub ~user:"alice"
        (Ssh_client.Password "wonderland") ep
    with
    | Ok conn ->
        if Ssh_client.exec conn "shell" = None then
          failwith "bench scale: ssh exec failed";
        Ssh_client.close conn
    | Error e -> failwith ("bench scale: ssh login failed: " ^ e)
  in
  drive ~fab ~front
    ~serve:(fun () -> Wedge_sshd.Sshd_privsep.serve_sharded envs front)
    ~run_conn ~total:sshd_conns ~rotate:false

(* ------------------------------------------------------------------ *)
(* Report, gates, artifact                                             *)

let per_shard_json ps =
  Printf.sprintf
    "        { \"sid\": %d, \"conns\": %d, \"span_ns\": %d, \"ns_per_conn\": %d }"
    ps.ps_sid ps.ps_conns ps.ps_span
    (if ps.ps_conns = 0 then 0 else ps.ps_span / ps.ps_conns)

let row_json service r =
  Printf.sprintf
    "    { \"service\": %S, \"shards\": %d, \"conns\": %d,\n\
    \      \"latency_ns\": { \"p50\": %d, \"p99\": %d, \"p999\": %d },\n\
    \      \"per_shard\": [\n%s\n      ],\n\
    \      \"makespan_ns\": %d, \"cross_shard_shootdowns\": %d }"
    service r.rw_shards r.rw_conns r.rw_p50 r.rw_p99 r.rw_p999
    (String.concat ",\n" (List.map per_shard_json r.rw_per_shard))
    r.rw_makespan r.rw_xshoot

(* Rows come in [shard_counts] order; speedup is first (1 shard) over
   last (max shards). *)
let speedup_x100 rows =
  match (rows, List.rev rows) with
  | r1 :: _, rn :: _ when rn.rw_makespan > 0 -> r1.rw_makespan * 100 / rn.rw_makespan
  | _ -> 0

let report service rows =
  List.iter
    (fun r ->
      let tag name = Printf.sprintf "%s %s @%d shard(s)" service name r.rw_shards in
      Bench_util.row3
        (tag "p50/p99/p999")
        (Printf.sprintf "%s / %s" (Bench_util.us r.rw_p50) (Bench_util.us r.rw_p99))
        (Bench_util.us r.rw_p999);
      Bench_util.row3 (tag "makespan") (Bench_util.ms r.rw_makespan)
        (Printf.sprintf "xshoot=%d" r.rw_xshoot))
    rows;
  Bench_util.row3
    (Printf.sprintf "%s speedup (%d vs 1 shards)" service max_shards)
    (Bench_util.ratio (float_of_int (speedup_x100 rows) /. 100.))
    ""

let run () =
  Bench_util.header
    (Printf.sprintf
       "Sharded scale-out: %d pop3 + %d httpd + %d sshd conns over %s shards"
       pop3_conns httpd_conns sshd_conns
       (String.concat "/" (List.map string_of_int shard_counts)));
  let section name f =
    List.map
      (fun n ->
        let r, wall = Bench_util.wall_once (fun () -> f n) in
        Printf.printf "  [%s @ %d shard(s): %.1f s wall]\n%!" name n wall;
        r)
      shard_counts
  in
  let pop3_rows = section "pop3" pop3_section in
  let httpd_rows = section "httpd" httpd_section in
  let sshd_rows = section "sshd" sshd_section in
  Bench_util.hr ();
  report "pop3" pop3_rows;
  report "httpd" httpd_rows;
  report "sshd" sshd_rows;
  print_endline
    "  (wall times are this host; the artifact holds simulated integers only)";
  List.iter
    (fun (service, rows) ->
      let s = speedup_x100 rows in
      if s < speedup_floor_x100 then
        failwith
          (Printf.sprintf
             "bench scale: %s speedup %d.%02dx below floor at %d shards" service
             (s / 100) (s mod 100) max_shards))
    [ ("pop3", pop3_rows); ("httpd", httpd_rows); ("sshd", sshd_rows) ];
  List.iter
    (fun r ->
      if not (r.rw_p50 < r.rw_p99 && r.rw_p99 <= r.rw_p999) then
        failwith
          (Printf.sprintf
             "bench scale: degenerate pop3 percentiles at %d shards (p50=%d p99=%d \
              p999=%d)"
             r.rw_shards r.rw_p50 r.rw_p99 r.rw_p999);
      let expected = rotations * (r.rw_shards - 1) in
      if r.rw_xshoot <> expected then
        failwith
          (Printf.sprintf
             "bench scale: %d cross-shard shootdowns at %d shards, expected %d"
             r.rw_xshoot r.rw_shards expected))
    pop3_rows;
  (let oc = open_out "BENCH_scale.json" in
   Printf.fprintf oc
     "{\n\
     \  \"total_conns\": %d,\n\
     \  \"window_per_shard\": %d,\n\
     \  \"rotations\": %d,\n\
     \  \"mix\": { \"seed\": %d, \"small\": \"STAT\", \"medium\": \"LIST\", \
      \"large\": \"RETR*\" },\n\
     \  \"sections\": [\n%s\n  ],\n\
     \  \"speedup_x100\": { \"pop3\": %d, \"httpd\": %d, \"sshd\": %d },\n\
     \  \"simulated\": true\n\
      }\n"
     (pop3_conns + httpd_conns + sshd_conns)
     window rotations mix_seed
     (String.concat ",\n"
        (List.map (row_json "pop3") pop3_rows
        @ List.map (row_json "httpd") httpd_rows
        @ List.map (row_json "sshd") sshd_rows))
     (speedup_x100 pop3_rows) (speedup_x100 httpd_rows) (speedup_x100 sshd_rows);
   close_out oc;
   print_endline "  wrote BENCH_scale.json");
  print_newline ()
