(* The benchmark harness: one experiment per table and figure in the
   paper's evaluation (see DESIGN.md's per-experiment index).

   Usage:
     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- fig7       # Figure 7 only
     dune exec bench/main.exe -- fig8 table2 ...
   Experiments: fig7 fig8 fig9 table2 metrics ablation bechamel faults tlb
   recovery reactor spawn scale.  "scale" is not in the default set — it
   drives 100k+ connections; run it explicitly (or with
   WEDGE_SCALE_SMOKE=1 for the CI-sized population). *)

let experiments =
  [
    ("fig7", Bench_fig7.run);
    ("fig8", Bench_fig8.run);
    ("fig9", Bench_fig9.run);
    ("table2", Bench_table2.run);
    ("metrics", Bench_metrics.run);
    ("ablation", Bench_ablation.run);
    ("bechamel", Bench_bechamel.run);
    ("faults", Bench_faults.run);
    ("tlb", Bench_tlb.run);
    ("recovery", Bench_recovery.run);
    ("reactor", Bench_reactor.run);
    ("spawn", Bench_spawn.run);
    ("scale", Bench_scale.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    if args = [] then
      [
        "fig7"; "fig8"; "fig9"; "table2"; "metrics"; "ablation"; "faults"; "tlb";
        "recovery"; "reactor"; "spawn";
      ]
    else args
  in
  print_endline "Wedge reproduction benchmarks (NSDI 2008)";
  print_endline "Simulated times are deterministic under the cost model; wall-clock";
  print_endline "results (Figure 9, bechamel) depend on this host.";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    selected
