(* Wall-clock microbenchmarks of the simulated primitives via Bechamel —
   one Test.make per paper table/figure, measuring what each simulated
   operation costs the host, complementing the simulated-time results. *)

open Bechamel
open Toolkit
module Kernel = Wedge_kernel.Kernel
module W = Wedge_core.Wedge

let make_env () =
  let k = Kernel.create () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  W.boot app;
  (k, app, main)

(* Figure 7 family: primitive creation. *)
let test_fig7 =
  let _, _, main = make_env () in
  let sc = W.sc_create () in
  let gate =
    W.sc_cgate_add main sc ~name:"bechamel.noop" ~entry:(fun _ ~trusted:_ ~arg -> arg)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  Test.make_grouped ~name:"fig7-primitives"
    [
      Test.make ~name:"pthread" (Staged.stage (fun () -> ignore (W.pthread main (fun _ -> 0))));
      Test.make ~name:"sthread"
        (Staged.stage (fun () ->
             ignore (W.sthread_create main (W.sc_create ()) (fun _ _ -> 0) 0)));
      Test.make ~name:"callgate"
        (Staged.stage (fun () ->
             ignore
               (W.sthread_create main sc
                  (fun ctx _ -> W.cgate ctx gate ~perms:(W.sc_create ()) ~arg:0)
                  0)));
      Test.make ~name:"fork" (Staged.stage (fun () -> ignore (W.fork main (fun _ -> 0))));
    ]

(* Figure 8 family: allocation. *)
let test_fig8 =
  let _, _, main = make_env () in
  let tag = W.tag_new ~name:"bechamel" ~pages:8 main in
  Test.make_grouped ~name:"fig8-memory"
    [
      Test.make ~name:"malloc+free"
        (Staged.stage (fun () ->
             let p = W.malloc main 64 in
             W.free main p));
      Test.make ~name:"smalloc+sfree"
        (Staged.stage (fun () ->
             let p = W.smalloc main 64 tag in
             W.sfree main p));
      Test.make ~name:"tag_new+delete (cached)"
        (Staged.stage (fun () ->
             let t = W.tag_new ~name:"b" ~pages:16 main in
             W.tag_delete main t));
    ]

(* Table 2 family: one full mini-SSL record round trip. *)
let test_table2 =
  let master = Bytes.make 32 'k' in
  let cr = Bytes.make 32 'c' and sr = Bytes.make 32 's' in
  let c = Wedge_tls.Record.derive ~master ~client_random:cr ~server_random:sr ~side:`Client in
  let s = Wedge_tls.Record.derive ~master ~client_random:cr ~server_random:sr ~side:`Server in
  let payload = Bytes.make 512 'd' in
  Test.make_grouped ~name:"table2-record-layer"
    [
      Test.make ~name:"seal+open 512B"
        (Staged.stage (fun () ->
             match Wedge_tls.Record.open_ s (Wedge_tls.Record.seal c payload) with
             | Some _ -> ()
             | None -> failwith "mac"));
    ]

let run () =
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:(Some 300) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) instance raw) instances
    in
    let results = Analyze.merge (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
    Hashtbl.iter
      (fun _measure by_test ->
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "  %-42s %12.0f ns/op\n" name est
            | _ -> Printf.printf "  %-42s (no estimate)\n" name)
          by_test)
      results
  in
  Bench_util.header "Bechamel wall-clock microbenchmarks (host time per simulated operation)";
  List.iter benchmark [ test_fig7; test_fig8; test_table2 ]
