(* Figure 7: sthread-call microbenchmarks.  Creation + execution + teardown
   of each primitive from a minimal-size parent, in simulated time, next to
   the values the paper reports for its 2.66 GHz Xeon. *)

module Kernel = Wedge_kernel.Kernel
module W = Wedge_core.Wedge
open Bench_util

let paper_us = [ ("pthread", 8.0); ("recycled", 8.0); ("sthread", 60.0); ("callgate", 62.0); ("fork", 65.0) ]

let measure () =
  let k = Kernel.create () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  W.boot app;
  let noop_body _ _ = 0 in
  let time f = snd (sim_time k f) in
  let pthread_t = time (fun () -> ignore (W.pthread main (fun _ -> 0))) in
  let sthread_t =
    time (fun () ->
        let h = W.sthread_create main (W.sc_create ()) noop_body 0 in
        ignore (W.sthread_join main h))
  in
  let sc = W.sc_create () in
  let fresh_gate =
    W.sc_cgate_add main sc ~name:"bench.noop" ~entry:(fun _ ~trusted:_ ~arg -> arg)
      ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let recycled_gate =
    W.sc_cgate_add ~recycled:true main sc ~name:"bench.noop.recycled"
      ~entry:(fun _ ~trusted:_ ~arg -> arg) ~cgsc:(W.sc_create ()) ~trusted:0
  in
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        (* warm the recycled gate so we measure steady-state reuse *)
        ignore (W.cgate ctx recycled_gate ~perms:(W.sc_create ()) ~arg:0);
        let cg = snd (sim_time k (fun () -> W.cgate ctx fresh_gate ~perms:(W.sc_create ()) ~arg:0)) in
        let rc = snd (sim_time k (fun () -> W.cgate ctx recycled_gate ~perms:(W.sc_create ()) ~arg:0)) in
        (* pack the two results *)
        (cg * 1_000_000) + rc)
      0
  in
  let packed = W.sthread_join main h in
  let callgate_t = packed / 1_000_000 and recycled_t = packed mod 1_000_000 in
  let fork_t = time (fun () -> ignore (W.fork main (fun _ -> 0))) in
  [
    ("pthread", pthread_t);
    ("recycled", recycled_t);
    ("sthread", sthread_t);
    ("callgate", callgate_t);
    ("fork", fork_t);
  ]

let run () =
  header "Figure 7 - sthread calls: creation/invocation latency (minimal parent)";
  row3 "primitive" "paper (us)" "measured (sim)";
  List.iter
    (fun (name, t) ->
      let paper = List.assoc name paper_us in
      row3 name (Printf.sprintf "%.0f us" paper) (us t))
    (measure ());
  print_newline ();
  let m = measure () in
  let get n = float_of_int (List.assoc n m) in
  Printf.printf "shape: sthread/pthread = %s (paper ~8x); fork/sthread = %s (paper ~1.1x);\n"
    (ratio (get "sthread" /. get "pthread"))
    (ratio (get "fork" /. get "sthread"));
  Printf.printf "       callgate/recycled = %s (paper ~8x)\n"
    (ratio (get "callgate" /. get "recycled"))
