(* Ablations of design choices DESIGN.md calls out:
   E7 - the userland tag free-list cache (paper §4.1: +20% partitioned
        Apache throughput);
   E8 - policy-proportional sthread creation vs whole-address-space fork
        as the parent grows (paper §6's expectation). *)

module Kernel = Wedge_kernel.Kernel
module Clock = Wedge_sim.Clock
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module W = Wedge_core.Wedge
module Henv = Wedge_httpd.Httpd_env
module Mitm = Wedge_httpd.Httpd_mitm
module Client = Wedge_httpd.Https_client
open Bench_util

let apache_cached_throughput ~tag_cache ~n =
  let k = Kernel.create () in
  let env = Henv.install k in
  W.set_tag_cache env.Henv.app tag_cache;
  let throughput = ref 0.0 in
  Fiber.run (fun () ->
      let request ?resume seed =
        let client_ep, server_ep = Chan.pair () in
        Fiber.spawn (fun () -> ignore (Mitm.serve_connection ~recycled:true env server_ep));
        Client.get ?resume ~rng:(Drbg.create ~seed) ~pinned:env.Henv.priv.Rsa.pub
          ~path:"/index.html" client_ep
      in
      let first = request 1 in
      let resume = first.Client.session in
      let t0 = Clock.now k.Kernel.clock in
      for i = 2 to n + 1 do
        ignore (request ?resume i)
      done;
      throughput := float_of_int n /. (float_of_int (Clock.now k.Kernel.clock - t0) /. 1e9));
  (!throughput, W.tag_cache_hits env.Henv.app, W.tag_cache_misses env.Henv.app)

let tag_cache_ablation () =
  header "Ablation E7 - tag free-list cache (partitioned Apache, cached sessions)";
  let on, hits, misses = apache_cached_throughput ~tag_cache:true ~n:30 in
  let off, _, _ = apache_cached_throughput ~tag_cache:false ~n:30 in
  row3 "tag cache" "throughput" "cache hits/misses";
  row3 "enabled" (Printf.sprintf "%.0f req/s" on) (Printf.sprintf "%d / %d" hits misses);
  row3 "disabled" (Printf.sprintf "%.0f req/s" off) "-";
  Printf.printf "\nend-to-end improvement from reuse: +%.1f%% (paper: +20%%)\n" (100. *. (on -. off) /. off);
  (* The per-operation effect, which the end-to-end number dilutes: our
     partitioning creates 4 tags per connection while the paper's Apache
     handled hundreds of memory objects per request, so reuse moves our
     throughput far less than theirs. *)
  let k = Kernel.create () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  W.boot app;
  let warm = W.tag_new ~pages:16 main in
  W.tag_delete main warm;
  let _, hit = sim_time k (fun () -> W.tag_new ~pages:16 main) in
  W.set_tag_cache app false;
  let _, cold = sim_time k (fun () -> W.tag_new ~pages:16 main) in
  Printf.printf "per-operation: tag_new reuse %s vs cold %s (%.1fx cheaper)\n"
    (ns hit) (ns cold) (float_of_int cold /. float_of_int hit)

let creation_scaling () =
  header "Ablation E8 - sthread vs fork creation as the parent address space grows";
  Printf.printf "%-22s %16s %16s %10s\n" "parent image" "sthread (empty sc)" "fork" "fork/sthread";
  List.iter
    (fun (label, image_pages, extra_tags) ->
      let k = Kernel.create () in
      let app = W.create_app ~image_pages k in
      let main = W.main_ctx app in
      W.boot app;
      (* Extra non-pristine memory (tags the parent mapped): an sthread with
         an empty policy never pays for these; fork always copies them. *)
      for i = 1 to extra_tags do
        ignore (W.tag_new ~name:(Printf.sprintf "bulk%d" i) ~pages:64 main)
      done;
      let sthread_t =
        snd (sim_time k (fun () -> ignore (W.sthread_create main (W.sc_create ()) (fun _ _ -> 0) 0)))
      in
      let fork_t = snd (sim_time k (fun () -> ignore (W.fork main (fun _ -> 0)))) in
      Printf.printf "%-22s %16s %16s %9.2fx\n" label (us sthread_t) (us fork_t)
        (float_of_int fork_t /. float_of_int sthread_t))
    [
      ("minimal (300 pg)", 300, 0);
      ("+64 tags (~16MB)", 300, 64);
      ("apache-sized image", 3500, 0);
      ("apache + 64 tags", 3500, 64);
    ];
  print_endline
    "\npaper (§6): \"For parents with large page tables, we expect sthread creation to be\n\
     faster than fork, because only those entries specified in the security policy are\n\
     copied; fork must always copy these in their entirety.\""

let run () =
  tag_cache_ablation ();
  creation_scaling ()
