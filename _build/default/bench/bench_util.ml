module Clock = Wedge_sim.Clock
module Kernel = Wedge_kernel.Kernel

let hr () = print_endline (String.make 78 '-')

let header title =
  print_newline ();
  hr ();
  Printf.printf "%s\n" title;
  hr ()

let row3 a b c = Printf.printf "%-34s %20s %20s\n" a b c
let row4 a b c d = Printf.printf "%-30s %14s %14s %16s\n" a b c d
let us v = Printf.sprintf "%.1f us" (float_of_int v /. 1e3)
let ns v = Printf.sprintf "%d ns" v
let ms v = Printf.sprintf "%.2f ms" (float_of_int v /. 1e6)
let ratio r = Printf.sprintf "%.1fx" r

let sim_time (k : Kernel.t) f =
  let t0 = Clock.now k.Kernel.clock in
  let v = f () in
  (v, Clock.now k.Kernel.clock - t0)

let wall_once f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let wall_time f =
  let v, t1 = wall_once f in
  let _, t2 = wall_once f in
  let _, t3 = wall_once f in
  (v, min t1 (min t2 t3))
