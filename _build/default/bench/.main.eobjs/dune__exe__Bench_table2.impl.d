bench/bench_table2.ml: Bench_util List Printf String Wedge_core Wedge_crypto Wedge_httpd Wedge_kernel Wedge_net Wedge_sim Wedge_sshd
