bench/main.ml: Array Bench_ablation Bench_bechamel Bench_fig7 Bench_fig8 Bench_fig9 Bench_metrics Bench_table2 List Printf String Sys
