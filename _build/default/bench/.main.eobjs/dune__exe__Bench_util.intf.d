bench/bench_util.mli: Wedge_kernel
