bench/bench_util.ml: Printf String Unix Wedge_kernel Wedge_sim
