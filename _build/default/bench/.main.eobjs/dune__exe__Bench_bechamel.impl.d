bench/bench_bechamel.ml: Analyze Bechamel Bench_util Benchmark Bytes Hashtbl Instance List Measure Printf Staged Test Time Toolkit Wedge_core Wedge_kernel Wedge_tls
