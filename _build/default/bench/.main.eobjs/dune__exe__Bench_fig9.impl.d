bench/bench_fig9.ml: Bench_util Filename List Printf Sys Unix Wedge_core Wedge_crowbar Wedge_crypto Wedge_httpd Wedge_kernel Wedge_net Wedge_sim Wedge_spec Wedge_sshd
