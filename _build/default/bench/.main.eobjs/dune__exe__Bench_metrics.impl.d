bench/bench_metrics.ml: Array Bench_util Filename List Option Printf String Sys
