bench/main.mli:
