bench/bench_fig7.ml: Bench_util List Printf Wedge_core Wedge_kernel
