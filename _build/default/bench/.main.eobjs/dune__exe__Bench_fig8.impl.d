bench/bench_fig8.ml: Bench_util List Printf Wedge_core Wedge_kernel Wedge_sim
