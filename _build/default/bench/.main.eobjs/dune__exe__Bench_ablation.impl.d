bench/bench_ablation.ml: Bench_util List Printf Wedge_core Wedge_crypto Wedge_httpd Wedge_kernel Wedge_net Wedge_sim
