(* Figure 8: memory-call microbenchmarks — malloc vs tag creation vs mmap,
   in simulated time. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module W = Wedge_core.Wedge
open Bench_util

let paper_ns = [ ("malloc", 50.0); ("tag_new (reuse)", 210.0); ("mmap", 1100.0) ]

let measure () =
  let k = Kernel.create () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  W.boot app;
  let time f = snd (sim_time k f) in
  (* steady-state malloc/smalloc: amortise over many calls *)
  let n = 64 in
  let tag0 = W.tag_new ~name:"bench.m" ~pages:8 main in
  (* warm the lazily mapped private heap so malloc timing excludes it *)
  ignore (W.malloc main 16);
  let malloc_t =
    let t = time (fun () -> for _ = 1 to n do ignore (W.malloc main 64) done) in
    t / n
  in
  let smalloc_t =
    let t = time (fun () -> for _ = 1 to n do ignore (W.smalloc main 64 tag0) done) in
    t / n
  in
  (* tag_new with cache reuse: delete/create cycles after one warm-up *)
  let warm = W.tag_new ~name:"bench.t" ~pages:16 main in
  W.tag_delete main warm;
  let reuse_t =
    let t =
      time (fun () ->
          for _ = 1 to n do
            let t = W.tag_new ~name:"bench.t" ~pages:16 main in
            W.tag_delete main t
          done)
    in
    t / n
  in
  (* cold tag_new (cache cannot serve: distinct page counts each time) *)
  let cold_t =
    let t = ref 0 in
    for i = 1 to 8 do
      let tv, dt = sim_time k (fun () -> W.tag_new ~name:"bench.c" ~pages:(30 + i) main) in
      ignore tv;
      t := !t + dt
    done;
    !t / 8
  in
  let cm = k.Kernel.costs in
  let mmap_t = cm.Cost_model.syscall_trap + cm.Cost_model.mmap_op in
  [
    ("malloc", malloc_t);
    ("smalloc", smalloc_t);
    ("tag_new (reuse)", reuse_t);
    ("tag_new (cold)", cold_t);
    ("mmap", mmap_t);
  ]

let run () =
  header "Figure 8 - memory calls: allocation latency";
  row3 "operation" "paper (ns)" "measured (sim)";
  let m = measure () in
  List.iter
    (fun (name, t) ->
      let paper =
        match List.assoc_opt name paper_ns with
        | Some p -> Printf.sprintf "%.0f ns" p
        | None -> "-"
      in
      row3 name paper (ns t))
    m;
  print_newline ();
  let get n = float_of_int (List.assoc n m) in
  Printf.printf
    "shape: smalloc/malloc = %s (paper ~1x); tag_new(reuse)/malloc = %s (paper ~4x);\n"
    (ratio (get "smalloc" /. get "malloc"))
    (ratio (get "tag_new (reuse)" /. get "malloc"));
  Printf.printf "       mmap/malloc = %s (paper ~22x)\n" (ratio (get "mmap" /. get "malloc"))
