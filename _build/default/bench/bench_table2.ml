(* Table 2: end-to-end application performance.
   Top half  - Apache throughput (requests/second of simulated server time)
               for Vanilla (monolithic, pooled workers), Wedge (the MITM
               partitioning with fresh callgates) and Recycled, with and
               without SSL session caching.
   Bottom half - OpenSSH latency: one login, one 10 MB scp. *)

module Kernel = Wedge_kernel.Kernel
module Fiber = Wedge_sim.Fiber
module Clock = Wedge_sim.Clock
module Chan = Wedge_net.Chan
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module W = Wedge_core.Wedge
module Henv = Wedge_httpd.Httpd_env
module Mono = Wedge_httpd.Httpd_mono
module Mitm = Wedge_httpd.Httpd_mitm
module Client = Wedge_httpd.Https_client
module Senv = Wedge_sshd.Sshd_env
module Sshd_mono = Wedge_sshd.Sshd_mono
module Sshd_wedge = Wedge_sshd.Sshd_wedge
module Ssh_client = Wedge_sshd.Ssh_client
open Bench_util

type variant = Vanilla | Wedge_part | Recycled

let variant_name = function Vanilla -> "Vanilla" | Wedge_part -> "Wedge" | Recycled -> "Recycled"

(* Serve [n] measured requests (after [warmup]); returns requests/second of
   simulated server time.  [cached] drives every measured request as a
   session-cache resumption. *)
let apache_throughput ?(n = 40) variant ~cached () =
  let k = Kernel.create () in
  let env = Henv.install ~session_cache:cached k in
  let serve ep =
    match variant with
    | Vanilla -> Mono.serve_connection env ep
    | Wedge_part -> ignore (Mitm.serve_connection ~recycled:false env ep)
    | Recycled -> ignore (Mitm.serve_connection ~recycled:true env ep)
  in
  let throughput = ref 0.0 in
  Fiber.run (fun () ->
      let request ?resume seed =
        let client_ep, server_ep = Chan.pair () in
        Fiber.spawn (fun () -> serve server_ep);
        Client.get ?resume ~rng:(Drbg.create ~seed) ~pinned:env.Henv.priv.Rsa.pub
          ~path:"/index.html" client_ep
      in
      (* Warm-up: establish a session (and the recycled gate pool). *)
      let first = request 1 in
      let resume = if cached then first.Client.session else None in
      let t0 = Clock.now k.Kernel.clock in
      for i = 2 to n + 1 do
        let r = request ?resume i in
        (match r.Client.response with
        | Some { Wedge_httpd.Http.status = 200; _ } -> ()
        | _ -> failwith "bench: request failed");
        if cached && not r.Client.resumed then failwith "bench: expected resumption"
      done;
      let elapsed_s = float_of_int (Clock.now k.Kernel.clock - t0) /. 1e9 in
      throughput := float_of_int n /. elapsed_s);
  !throughput

let paper_apache = [
  (* (variant, cached, paper req/s) *)
  (Vanilla, true, 1238.); (Wedge_part, true, 238.); (Recycled, true, 339.);
  (Vanilla, false, 247.); (Wedge_part, false, 132.); (Recycled, false, 170.);
]

(* SSH latency: simulated end-to-end time (network round trips included) of
   one login and of one 10 MB upload. *)
let ssh_latency variant =
  let k = Kernel.create () in
  let env = Senv.install k in
  let serve ep =
    match variant with
    | Vanilla -> Sshd_mono.serve_connection env ep
    | _ -> ignore (Sshd_wedge.serve_connection env ep)
  in
  let login_ns = ref 0 and scp_ns = ref 0 in
  Fiber.run (fun () ->
      let connect seed =
        let client_ep, server_ep = Chan.pair ~clock:k.Kernel.clock () in
        Fiber.spawn (fun () -> serve server_ep);
        match
          Ssh_client.login ~rng:(Drbg.create ~seed) ~pinned_rsa:env.Senv.host_rsa.Rsa.pub
            ~pinned_dsa:env.Senv.host_dsa.Dsa.pub ~user:"alice"
            (Ssh_client.Password "wonderland") client_ep
        with
        | Ok conn -> conn
        | Error e -> failwith ("bench ssh: " ^ e)
      in
      let t0 = Clock.now k.Kernel.clock in
      let conn = connect 1 in
      login_ns := Clock.now k.Kernel.clock - t0;
      Ssh_client.close conn;
      let data = String.make (10 * 1024 * 1024) 'x' in
      (* like the paper's scp measurement, end to end including the
         connection and authentication *)
      let t0 = Clock.now k.Kernel.clock in
      let conn = connect 2 in
      if not (Ssh_client.scp_upload conn ~path:"upload.bin" ~data) then
        failwith "bench scp failed";
      scp_ns := Clock.now k.Kernel.clock - t0;
      Ssh_client.close conn);
  (!login_ns, !scp_ns)

let run () =
  header "Table 2 (top) - Apache throughput (requests/second, simulated server time)";
  row4 "workload / variant" "paper" "measured" "measured/paper";
  List.iter
    (fun (variant, cached, paper) ->
      let t = apache_throughput variant ~cached () in
      row4
        (Printf.sprintf "%s %s" (if cached then "cached    " else "not cached") (variant_name variant))
        (Printf.sprintf "%.0f req/s" paper)
        (Printf.sprintf "%.0f req/s" t)
        (ratio (t /. paper)))
    paper_apache;
  print_newline ();
  let tput v c = apache_throughput v ~cached:c () in
  let vc = tput Vanilla true and wc = tput Wedge_part true and rc = tput Recycled true in
  let vn = tput Vanilla false and wn = tput Wedge_part false and rn = tput Recycled false in
  Printf.printf
    "shape: recycled/vanilla cached = %.0f%% (paper 27%%), not cached = %.0f%% (paper 69%%)\n"
    (100. *. rc /. vc) (100. *. rn /. vn);
  Printf.printf "       recycled speedup over fresh callgates: cached +%.0f%% (paper +42%%), not cached +%.0f%% (paper +29%%)\n"
    (100. *. (rc -. wc) /. wc)
    (100. *. (rn -. wn) /. wn);
  header "Table 2 (bottom) - OpenSSH latency (simulated end-to-end)";
  row4 "operation" "paper" "vanilla (measured)" "wedge (measured)";
  let v_login, v_scp = ssh_latency Vanilla in
  let w_login, w_scp = ssh_latency Wedge_part in
  row4 "ssh login delay" "0.145 / 0.148 s"
    (Printf.sprintf "%.3f s" (float_of_int v_login /. 1e9))
    (Printf.sprintf "%.3f s" (float_of_int w_login /. 1e9));
  row4 "10MB scp delay" "0.376 / 0.370 s"
    (Printf.sprintf "%.3f s" (float_of_int v_scp /. 1e9))
    (Printf.sprintf "%.3f s" (float_of_int w_scp /. 1e9))
