(* Figure 9: cb-log overhead.  Each workload runs natively, under the Pin
   model, and under full cb-log; wall-clock times and the Crowbar/Pin
   ratios the paper annotates above its bars.  The two application entries
   (ssh, apache) run a real protocol session with instrumentation attached
   to the server's compartments. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Instr = Wedge_sim.Instr
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module W = Wedge_core.Wedge
module Cb_log = Wedge_crowbar.Cb_log
module Workload = Wedge_spec.Workload
open Bench_util

let paper_ratio = [
  ("ssh", 2.4); ("mcf", 7.1); ("gobmk", 8.7); ("apache", 8.8); ("quantum", 29.);
  ("hmmer", 42.); ("sjeng", 51.); ("bzip2", 53.); ("h264", 90.);
]

type rowresult = {
  r_name : string;
  r_native : float;
  r_pin : float;
  r_crowbar : float;
  r_accesses : int;
}

let run_kernel_workload (w : Workload.t) =
  let scale = w.Workload.default_scale in
  let c0, native = wall_time (fun () -> w.Workload.run ~instr:Instr.null ~scale) in
  let _, pin =
    wall_time (fun () ->
        let p = Cb_log.pin () in
        w.Workload.run ~instr:(Cb_log.pin_instr p) ~scale)
  in
  let log = ref (Cb_log.create ()) in
  let c1, crowbar =
    wall_time (fun () ->
        let l = Cb_log.create () in
        log := l;
        w.Workload.run ~instr:(Cb_log.instr l) ~scale)
  in
  if c0 <> c1 then failwith (w.Workload.name ^ ": checksum mismatch across modes");
  {
    r_name = w.Workload.name;
    r_native = native;
    r_pin = pin;
    r_crowbar = crowbar;
    r_accesses = Wedge_crowbar.Trace.access_count (Cb_log.trace !log);
  }

(* One sshd login session against the partitioned server with the chosen
   instrumentation attached to every compartment. *)
let ssh_session instr =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Wedge_sshd.Sshd_env.install ~image_pages:80 k in
  W.set_instr env.Wedge_sshd.Sshd_env.main instr;
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> ignore (Wedge_sshd.Sshd_wedge.serve_connection env server_ep));
      match
        Wedge_sshd.Ssh_client.login ~rng:(Drbg.create ~seed:3)
          ~pinned_rsa:env.Wedge_sshd.Sshd_env.host_rsa.Rsa.pub
          ~pinned_dsa:env.Wedge_sshd.Sshd_env.host_dsa.Dsa.pub ~user:"alice"
          (Wedge_sshd.Ssh_client.Password "wonderland") client_ep
      with
      | Ok conn ->
          ignore (Wedge_sshd.Ssh_client.exec conn "shell");
          Wedge_sshd.Ssh_client.close conn
      | Error e -> failwith e)

(* One HTTPS request against the partitioned Apache stand-in. *)
let apache_session instr =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Wedge_httpd.Httpd_env.install ~image_pages:80 k in
  W.set_instr env.Wedge_httpd.Httpd_env.main instr;
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> ignore (Wedge_httpd.Httpd_mitm.serve_connection env server_ep));
      let r =
        Wedge_httpd.Https_client.get ~rng:(Drbg.create ~seed:4)
          ~pinned:env.Wedge_httpd.Httpd_env.priv.Rsa.pub ~path:"/index.html" client_ep
      in
      if r.Wedge_httpd.Https_client.response = None then failwith "apache session failed")

let run_app_workload name session =
  let _, native = wall_time (fun () -> session Instr.null) in
  let _, pin = wall_time (fun () -> session (Cb_log.pin_instr (Cb_log.pin ()))) in
  let log = ref (Cb_log.create ()) in
  let _, crowbar =
    wall_time (fun () ->
        let l = Cb_log.create () in
        log := l;
        session (Cb_log.instr l))
  in
  {
    r_name = name;
    r_native = native;
    r_pin = pin;
    r_crowbar = crowbar;
    r_accesses = Wedge_crowbar.Trace.access_count (Cb_log.trace !log);
  }

let run () =
  header "Figure 9 - cb-log overhead (wall clock; ratio = Crowbar/Pin as in the paper)";
  Printf.printf "%-9s %11s %11s %11s %11s %9s %10s\n" "workload" "native (s)" "pin (s)"
    "crowbar(s)" "cb/pin" "paper" "accesses";
  let rows =
    run_app_workload "ssh" ssh_session
    :: run_app_workload "apache" apache_session
    :: List.map run_kernel_workload Workload.all
  in
  let ordered =
    List.sort (fun a b -> compare (a.r_crowbar /. a.r_pin) (b.r_crowbar /. b.r_pin)) rows
  in
  List.iter
    (fun r ->
      Printf.printf "%-9s %11.4f %11.4f %11.4f %10.1fx %8.1fx %10d\n" r.r_name r.r_native
        r.r_pin r.r_crowbar (r.r_crowbar /. r.r_pin)
        (List.assoc r.r_name paper_ratio)
        r.r_accesses)
    ordered;
  let mean f = List.fold_left (fun a r -> a +. f r) 0. rows /. float_of_int (List.length rows) in
  Printf.printf
    "\nmeans: pin/native = %.1fx (paper ~7x), crowbar/native = %.1fx (paper ~96x), crowbar/pin = %.1fx (paper ~27x)\n"
    (mean (fun r -> r.r_pin /. r.r_native))
    (mean (fun r -> r.r_crowbar /. r.r_native))
    (mean (fun r -> r.r_crowbar /. r.r_pin));
  (* The paper's cb-log writes its trace to disk for cb-analyze; report the
     cost and size of doing so for one representative workload. *)
  (match Workload.find "bzip2" with
  | Some w ->
      let log = Cb_log.create () in
      ignore (w.Workload.run ~instr:(Cb_log.instr log) ~scale:w.Workload.default_scale);
      let path = Filename.temp_file "wedge-fig9" ".cblog" in
      let _, t = wall_once (fun () -> Wedge_crowbar.Trace.save (Cb_log.trace log) path) in
      let size_mb = float_of_int (Unix.stat path).Unix.st_size /. 1048576. in
      Printf.printf "\ntrace file (bzip2 run): %.1f MB written in %.2f s (paper: traces in < 10 min)\n"
        size_mb t;
      Sys.remove path
  | None -> ());
  print_endline
    "note: applications instrument bulk record operations, not per-byte loads, so their\n\
     absolute ratios are compressed; the paper's shape (apps cheapest, h264-class\n\
     access-dense kernels dearest) is what this experiment reproduces."
