(** Table formatting and measurement helpers shared by the benchmark
    harness. *)

val hr : unit -> unit
(** Print a horizontal rule. *)

val header : string -> unit
(** Experiment banner. *)

val row3 : string -> string -> string -> unit
(** Aligned three-column row. *)

val row4 : string -> string -> string -> string -> unit

val us : int -> string
(** Nanoseconds rendered as microseconds. *)

val ns : int -> string
val ms : int -> string
val ratio : float -> string

val sim_time : Wedge_kernel.Kernel.t -> (unit -> 'a) -> 'a * int
(** Run under the simulated clock, returning elapsed simulated ns. *)

val wall_time : (unit -> 'a) -> 'a * float
(** Wall-clock seconds (best of three runs). *)

val wall_once : (unit -> 'a) -> 'a * float
