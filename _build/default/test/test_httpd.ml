(* Apache/OpenSSL stand-in tests: functional equivalence of the three
   layouts (monolithic, Figure 2 "simple", Figures 3-5 "mitm"), session
   caching, recycled callgates, and the paper's attack experiments —
   private-key disclosure, session-key influence, and the man-in-the-middle
   + exploit combination that succeeds against the simple partitioning and
   fails against the fine-grained one. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Process = Wedge_kernel.Process
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Mitm = Wedge_net.Mitm
module Attacker = Wedge_net.Attacker
module Tag = Wedge_mem.Tag
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Wire = Wedge_tls.Wire
module Record = Wedge_tls.Record
module W = Wedge_core.Wedge
module Env = Wedge_httpd.Httpd_env
module Mono = Wedge_httpd.Httpd_mono
module Simple = Wedge_httpd.Httpd_simple
module Mitm_httpd = Wedge_httpd.Httpd_mitm
module Client = Wedge_httpd.Https_client
module Http = Wedge_httpd.Http

let check = Alcotest.check

(* Small image: tests exercise semantics, not Table 2 costs. *)
let mk_env ?(session_cache = true) () =
  let k = Kernel.create ~costs:Cost_model.free () in
  Env.install ~image_pages:80 ~session_cache k

type variant = VMono | VSimple | VMitm

let serve ?recycled ?exploit_handshake ?exploit_request variant env ep =
  match variant with
  | VMono ->
      (* the mono server's single exploit hook fires on /xploit *)
      Mono.serve_connection ?exploit:exploit_request env ep
  | VSimple ->
      ignore
        (Simple.serve_connection ?recycled ?exploit_handshake ?exploit_request env ep)
  | VMitm ->
      ignore
        (Mitm_httpd.serve_connection ?recycled ?exploit_handshake ?exploit_request env ep)

let fetch ?resume ?(seed = 7) ?(path = "/index.html") env variant ?recycled ?exploit_handshake
    ?exploit_request () =
  let result = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          serve ?recycled ?exploit_handshake ?exploit_request variant env server_ep);
      let rng = Drbg.create ~seed in
      result :=
        Some (Client.get ?resume ~rng ~pinned:env.Env.priv.Rsa.pub ~path client_ep));
  Option.get !result

(* ---------- functional ---------- *)

let body_of (r : Client.result) =
  match r.Client.response with Some { Http.status = 200; body } -> Some body | _ -> None

let test_serves_index variant () =
  let env = mk_env () in
  let r = fetch env variant () in
  check (Alcotest.option Alcotest.string) "index body" (Some Env.index_body) (body_of r);
  check Alcotest.int "served counter" 1 env.Env.served

let test_404 variant () =
  let env = mk_env () in
  let r = fetch env variant ~path:"/nope.html" () in
  match r.Client.response with
  | Some { Http.status = 404; _ } -> ()
  | _ -> Alcotest.fail "expected 404"

let test_resumption variant () =
  let env = mk_env () in
  let r1 = fetch env variant ~seed:1 () in
  check Alcotest.bool "first is full" false r1.Client.resumed;
  let r2 = fetch ?resume:r1.Client.session env variant ~seed:2 () in
  check Alcotest.bool "second resumed" true r2.Client.resumed;
  check (Alcotest.option Alcotest.string) "resumed body" (Some Env.index_body) (body_of r2)

let test_cache_disabled variant () =
  let env = mk_env ~session_cache:false () in
  let r1 = fetch env variant ~seed:1 () in
  let r2 = fetch ?resume:r1.Client.session env variant ~seed:2 () in
  check Alcotest.bool "never resumed" false r2.Client.resumed;
  check Alcotest.bool "still serves" true (body_of r2 <> None)

let test_recycled_variant variant () =
  let env = mk_env () in
  let r1 = fetch env variant ~recycled:true ~seed:1 () in
  let r2 = fetch ?resume:r1.Client.session env variant ~recycled:true ~seed:2 () in
  check Alcotest.bool "recycled serves" true (body_of r1 <> None && body_of r2 <> None);
  check Alcotest.bool "recycled resumed" true r2.Client.resumed

(* ---------- attack: private-key disclosure ---------- *)

(* The payload tries to read the private-key tag and the host shadow file
   with whatever privileges the exploited compartment has. *)
let key_thief env loot ctx =
  (match Attacker.try_read ctx ~addr:env.Env.key_addr ~len:64 with
  | Ok data -> Attacker.grab loot ~label:"privkey" data
  | Error _ -> ());
  match W.vfs_read ctx "/etc/shadow" with
  | Ok data -> Attacker.grab loot ~label:"shadow" data
  | Error _ -> ()

let test_mono_exploit_discloses_key () =
  let env = mk_env () in
  let loot = Attacker.loot_create () in
  ignore (fetch env VMono ~path:"/xploit" ~exploit_request:(key_thief env loot) ());
  check Alcotest.bool "private key read" true (Attacker.stolen loot ~label:"privkey" <> None);
  check Alcotest.bool "shadow read" true (Attacker.stolen loot ~label:"shadow" <> None)

let test_partitioned_exploit_cannot_reach_key variant () =
  let env = mk_env () in
  let loot = Attacker.loot_create () in
  let r =
    fetch env variant ~path:"/xploit"
      ~exploit_handshake:(key_thief env loot)
      ~exploit_request:(key_thief env loot) ()
  in
  ignore r;
  check Alcotest.int "nothing reachable" 0 (Attacker.count loot)

(* ---------- attack: session-key influence (§5.1.1) ---------- *)

let test_server_random_not_caller_controlled () =
  (* Replay attack surface (§5.1.1): an attacker replays the exact client
     inputs of an eavesdropped connection (identical client random and
     premaster, via an identical client RNG seed).  Because the callgate
     generates the server random itself — the handshake driver has no
     input for it — the derived session keys still differ. *)
  let env = mk_env ~session_cache:false () in
  let r1 = fetch env VSimple ~seed:42 () in
  let r2 = fetch env VSimple ~seed:42 () in
  (match (r1.Client.session, r2.Client.session) with
  | Some s1, Some s2 ->
      (* The replay really was byte-identical on the client side... *)
      check Alcotest.bool "identical client inputs" true
        (Bytes.equal s1.Wedge_tls.Handshake.cs_master s2.Wedge_tls.Handshake.cs_master)
  | _ -> Alcotest.fail "handshakes failed");
  (* ...yet the per-connection record keys differ: the server's random
     contribution, generated inside the callgate, made them fresh. *)
  check Alcotest.bool "replay yields different session keys" false
    (String.equal r1.Client.keys_fingerprint r2.Client.keys_fingerprint)

(* ---------- attack: MITM + exploit (§5.1.2) ---------- *)

(* Full scenario: a passive man-in-the-middle forwards the handshake of a
   legitimate client while an exploit runs inside the server's
   network-facing compartment.  On the simple partitioning the worker holds
   the session key in memory it can read (the callgate returned it), so the
   exploit leaks it and the attacker decrypts the captured traffic.  On the
   fine-grained partitioning the handshake sthread holds nothing. *)

let mitm_attack variant ~leak_probe =
  let env = mk_env () in
  let mitm = Mitm.create () in
  let loot = Attacker.loot_create () in
  let response = ref None in
  Fiber.run (fun () ->
      let client_ep, mitm_client = Chan.pair ~costs:Cost_model.free () in
      let mitm_server, server_ep = Chan.pair ~costs:Cost_model.free () in
      Mitm.splice mitm ~client_side:mitm_client ~server_side:mitm_server;
      Fiber.spawn (fun () ->
          serve variant env server_ep ~exploit_handshake:(leak_probe env loot));
      let rng = Drbg.create ~seed:9 in
      let r = Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" client_ep in
      response := Some r);
  (loot, Mitm.captured mitm Mitm.Server_to_client, Option.get !response)

(* On the simple partition the worker can read the argument buffer where
   setup_session_key returned master+keys; Figure 2's residual weakness. *)
let simple_leak env loot ctx =
  ignore env;
  let tags = W.live_tags (W.app_of ctx) in
  List.iter
    (fun (tag : Tag.t) ->
      ignore (Attacker.steal_tag ctx loot ~label:("tag:" ^ tag.Tag.name) tag))
    tags

let decrypt_capture ~keys_state capture =
  (* Offline decryption of captured server->client records using the leaked
     server record state (swap tx/rx halves to act as receiver), replaying
     every sealed record — including the server Finished — in order so the
     stream cipher and sequence numbers line up. *)
  let b = keys_state in
  let swapped =
    Record.of_bytes
      (Bytes.concat Bytes.empty
         [
           Bytes.sub b 32 32;
           Bytes.sub b 0 32;
           Bytes.sub b (64 + 258) 258;
           Bytes.sub b 64 258;
           Bytes.sub b (64 + 524) 8;
           Bytes.sub b (64 + 516) 8;
         ])
  in
  Wire.parse_frames capture
  |> List.filter_map (fun (t, record) ->
         if t = Wire.App_data || t = Wire.Finished then
           match Record.open_ swapped record with
           | Some pt when t = Wire.App_data -> Some pt
           | _ -> None
         else None)

let find_keys_in_loot loot =
  (* Scan stolen memory for a plausible serialised Record.keys blob: the
     simple-partition argument buffer holds it as an lv block at offset 34
     of the op-2 reply. *)
  let candidates = ref [] in
  List.iter
    (fun label ->
      match Attacker.stolen loot ~label with
      | Some data ->
          let n = String.length data in
          let rec scan i =
            if i + 4 + Record.state_size <= n then begin
              let len =
                Char.code data.[i]
                lor (Char.code data.[i + 1] lsl 8)
                lor (Char.code data.[i + 2] lsl 16)
                lor (Char.code data.[i + 3] lsl 24)
              in
              if len = Record.state_size then
                candidates := Bytes.of_string (String.sub data (i + 4) len) :: !candidates;
              scan (i + 1)
            end
          in
          scan 0
      | None -> ())
    (Attacker.labels loot);
  !candidates

let test_mitm_succeeds_on_simple_partition () =
  let loot, capture, response = mitm_attack VSimple ~leak_probe:simple_leak in
  (* The legitimate client completed (the MITM was passive)... *)
  check Alcotest.bool "client completed" true (response.Client.response <> None);
  (* ...but the exploited worker leaked tag memory containing the record
     keys, and the attacker decrypts the captured response. *)
  let candidates = find_keys_in_loot loot in
  check Alcotest.bool "record keys found in leaked memory" true (candidates <> []);
  let plaintexts =
    List.concat_map (fun ks -> decrypt_capture ~keys_state:ks capture) candidates
  in
  check Alcotest.bool "captured HTTPS response decrypted" true
    (List.exists
       (fun pt ->
         let s = Bytes.to_string pt in
         String.length s >= 8 && String.sub s 0 8 = "HTTP/1.0")
       plaintexts)

let test_mitm_fails_on_fine_partition () =
  let loot, capture, response = mitm_attack VMitm ~leak_probe:simple_leak in
  check Alcotest.bool "client completed despite exploit" true (response.Client.response <> None);
  (match response.Client.response with
  | Some { Http.status = 200; body } -> check Alcotest.string "body intact" Env.index_body body
  | _ -> Alcotest.fail "expected 200");
  (* The handshake sthread could only leak what it can read: no key state
     anywhere in it. *)
  let candidates = find_keys_in_loot loot in
  let plaintexts =
    List.concat_map (fun ks -> decrypt_capture ~keys_state:ks capture) candidates
  in
  check Alcotest.bool "capture not decryptable" true (plaintexts = []);
  (* And the session-key / finished-state / key tags were all unreadable:
     the loot only ever contains the argument buffer. *)
  List.iter
    (fun label ->
      check Alcotest.bool ("leaked " ^ label ^ " allowed") true
        (label = "tag:httpd.arg" || label = "tag:pristine"))
    (Attacker.labels loot)

let test_handler_not_started_after_bad_handshake () =
  let env = mk_env () in
  let debug = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> debug := Some (Mitm_httpd.serve_connection env server_ep));
      (* Speak garbage instead of SSL. *)
      Chan.write_string client_ep "GET / HTTP/1.0\r\n\r\n";
      Chan.close client_ep);
  match !debug with
  | Some d ->
      check Alcotest.bool "handler never started" true (d.Mitm_httpd.handler_status = None)
  | None -> Alcotest.fail "no debug"

let test_client_handler_has_no_network () =
  (* Exploit in the client handler: it cannot find any usable descriptor —
     its only paths to the network are the SSL callgates. *)
  let env = mk_env () in
  let outcome = ref `Untried in
  ignore
    (fetch env VMitm ~path:"/xploit"
       ~exploit_request:(fun ctx ->
         let probes =
           List.map
             (fun fd ->
               match W.fd_read ctx fd 1 with
               | _ -> true
               | exception W.Fd_error _ -> false
               | exception _ -> false)
             [ 3; 4; 5; 6 ]
         in
         outcome := if List.exists Fun.id probes then `Has_fd else `No_fd)
       ());
  check Alcotest.bool "no readable descriptors" true (!outcome = `No_fd)

let test_injection_during_data_phase_dropped () =
  let env = mk_env () in
  let response = ref None in
  Fiber.run (fun () ->
      let client_ep, mitm_client = Chan.pair ~costs:Cost_model.free () in
      let mitm_server, server_ep = Chan.pair ~costs:Cost_model.free () in
      let mitm = Mitm.create () in
      Mitm.splice mitm ~client_side:mitm_client ~server_side:mitm_server;
      Fiber.spawn (fun () -> ignore (Mitm_httpd.serve_connection env server_ep));
      let rng = Drbg.create ~seed:11 in
      let io =
        Wire.io_of_fns
          ~recv:(fun n ->
            let b = Chan.read client_ep n in
            if Bytes.length b = 0 then None else Some b)
          ~send:(fun b -> Chan.write client_ep b)
      in
      match Wedge_tls.Handshake.client_connect ~rng ~pinned:env.Env.priv.Rsa.pub io with
      | Error e -> Alcotest.fail e
      | Ok res ->
          (* Attacker injects a forged record ahead of the real request. *)
          Mitm.inject mitm Mitm.Client_to_server
            (Wire.frame Wire.App_data (Bytes.make 64 'Z'));
          Fiber.yield ();
          Wedge_tls.Handshake.send_data io res.Wedge_tls.Handshake.cr_keys
            (Bytes.of_string "GET /index.html");
          (* the response arrives as header + body records *)
          let buf = Buffer.create 512 in
          (match Wedge_tls.Handshake.recv_data io res.Wedge_tls.Handshake.cr_keys with
          | Ok r1 -> (
              Buffer.add_bytes buf r1;
              match Wedge_tls.Handshake.recv_data io res.Wedge_tls.Handshake.cr_keys with
              | Ok r2 ->
                  Buffer.add_bytes buf r2;
                  response := Http.parse_response (Buffer.contents buf)
              | Error _ -> ())
          | Error _ -> ());
          Chan.close client_ep);
  match !response with
  | Some { Http.status = 200; body } ->
      check Alcotest.string "served correct page despite injection" Env.index_body body
  | _ -> Alcotest.fail "request not served"

(* ---------- session cache in tagged memory ---------- *)

let test_sess_store_semantics () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let module S = Wedge_httpd.Sess_store in
  let s = S.create ~cap:3 main in
  let m n = Bytes.make 32 (Char.chr n) in
  S.store main s ~sid:"aaaa" ~master:(m 1);
  S.store main s ~sid:"bbbb" ~master:(m 2);
  check Alcotest.bool "lookup hit" true (S.lookup main s ~sid:"aaaa" = Some (m 1));
  check Alcotest.bool "lookup miss" true (S.lookup main s ~sid:"zzzz" = None);
  check Alcotest.int "size" 2 (S.size main s);
  (* update in place *)
  S.store main s ~sid:"aaaa" ~master:(m 9);
  check Alcotest.bool "updated" true (S.lookup main s ~sid:"aaaa" = Some (m 9));
  check Alcotest.int "size unchanged" 2 (S.size main s);
  (* FIFO eviction past capacity *)
  S.store main s ~sid:"cccc" ~master:(m 3);
  S.store main s ~sid:"dddd" ~master:(m 4);
  check Alcotest.bool "evicted oldest slot" true (S.lookup main s ~sid:"dddd" <> None);
  S.flush main s;
  check Alcotest.int "flushed" 0 (S.size main s);
  check Alcotest.bool "gone" true (S.lookup main s ~sid:"aaaa" = None);
  S.set_enabled s false;
  S.store main s ~sid:"eeee" ~master:(m 5);
  check Alcotest.bool "disabled" true (S.lookup main s ~sid:"eeee" = None)

let test_session_cache_tag_unreadable_by_compartments () =
  (* The cached master secrets live in tagged memory granted only to the
     session callgates: both network-facing sthreads are denied. *)
  let env = mk_env () in
  let r1 = fetch env VMitm ~seed:1 () in
  let verdict_hs = ref `Untried and verdict_ch = ref `Untried in
  let probe target = fun ctx ->
    let tag = Wedge_httpd.Sess_store.tag env.Env.scache in
    target :=
      (match Attacker.try_read ctx ~addr:tag.Tag.base ~len:8 with
      | Ok _ -> `Read
      | Error _ -> `Denied)
  in
  let r2 =
    fetch ?resume:r1.Client.session env VMitm ~seed:2 ~path:"/xploit"
      ~exploit_handshake:(probe verdict_hs) ~exploit_request:(probe verdict_ch) ()
  in
  check Alcotest.bool "resumed through the tagged cache" true r2.Client.resumed;
  check Alcotest.bool "handshake sthread denied" true (!verdict_hs = `Denied);
  check Alcotest.bool "client handler denied" true (!verdict_ch = `Denied)

(* ---------- strict SELinux (extension of §3.1's syscall policies) ---------- *)

let test_strict_selinux_still_serves () =
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Env.install ~image_pages:80 ~strict_selinux:true k in
  let result = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> ignore (Mitm_httpd.serve_connection env server_ep));
      let rng = Drbg.create ~seed:21 in
      result := Some (Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" client_ep));
  match (Option.get !result).Client.response with
  | Some { Http.status = 200; body } -> check Alcotest.string "served" Env.index_body body
  | _ -> Alcotest.fail "strict policy broke the server"

let test_strict_selinux_denies_offpolicy_syscalls () =
  (* Under the strict policy an exploited worker cannot even create tags or
     spawn sthreads: the SELinux domain only grants read/write/open/cgate. *)
  let k = Kernel.create ~costs:Cost_model.free () in
  let env = Env.install ~image_pages:80 ~strict_selinux:true k in
  let verdicts = ref [] in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          ignore
            (Mitm_httpd.serve_connection
               ~exploit_handshake:(fun ctx ->
                 let try_ name f =
                   verdicts :=
                     (name, match f () with _ -> `Allowed | exception Wedge_kernel.Kernel.Eperm _ -> `Denied)
                     :: !verdicts
                 in
                 try_ "tag_new" (fun () -> ignore (W.tag_new ctx));
                 try_ "fork" (fun () -> ignore (W.fork ctx (fun _ -> 0)));
                 try_ "sthread_create" (fun () ->
                     ignore (W.sthread_create ctx (W.sc_create ()) (fun _ _ -> 0) 0)))
               env server_ep));
      let rng = Drbg.create ~seed:22 in
      ignore (Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" client_ep));
  List.iter
    (fun (name, verdict) ->
      check Alcotest.bool (name ^ " denied by SELinux") true (verdict = `Denied))
    !verdicts;
  check Alcotest.int "three probes ran" 3 (List.length !verdicts)

let v name variant f = Alcotest.test_case (name ^ " (" ^ (match variant with VMono -> "mono" | VSimple -> "simple" | VMitm -> "mitm") ^ ")") `Quick (f variant)

let () =
  Alcotest.run "wedge_httpd"
    [
      ( "functional",
        [
          v "serves index" VMono test_serves_index;
          v "serves index" VSimple test_serves_index;
          v "serves index" VMitm test_serves_index;
          v "404" VMono test_404;
          v "404" VSimple test_404;
          v "404" VMitm test_404;
          v "resumption" VMono test_resumption;
          v "resumption" VSimple test_resumption;
          v "resumption" VMitm test_resumption;
          v "cache off" VMono test_cache_disabled;
          v "cache off" VMitm test_cache_disabled;
          v "recycled" VSimple test_recycled_variant;
          v "recycled" VMitm test_recycled_variant;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "mono exploit discloses key" `Quick test_mono_exploit_discloses_key;
          v "key unreachable" VSimple test_partitioned_exploit_cannot_reach_key;
          v "key unreachable" VMitm test_partitioned_exploit_cannot_reach_key;
          Alcotest.test_case "server random not caller-controlled" `Quick
            test_server_random_not_caller_controlled;
          Alcotest.test_case "MITM succeeds on simple partition" `Quick
            test_mitm_succeeds_on_simple_partition;
          Alcotest.test_case "MITM fails on fine partition" `Quick
            test_mitm_fails_on_fine_partition;
          Alcotest.test_case "handler gated on clean handshake" `Quick
            test_handler_not_started_after_bad_handshake;
          Alcotest.test_case "client handler has no network" `Quick
            test_client_handler_has_no_network;
          Alcotest.test_case "data-phase injection dropped" `Quick
            test_injection_during_data_phase_dropped;
        ] );
      ( "session-cache",
        [
          Alcotest.test_case "tagged-memory store semantics" `Quick test_sess_store_semantics;
          Alcotest.test_case "cache tag unreadable by compartments" `Quick
            test_session_cache_tag_unreadable_by_compartments;
        ] );
      ( "selinux",
        [
          Alcotest.test_case "strict policy still serves" `Quick test_strict_selinux_still_serves;
          Alcotest.test_case "off-policy syscalls denied" `Quick
            test_strict_selinux_denies_offpolicy_syscalls;
        ] );
    ]
