test/test_crowbar.mli:
