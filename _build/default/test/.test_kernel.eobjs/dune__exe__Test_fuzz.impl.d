test/test_fuzz.ml: Alcotest Bytes Char Gen List Printf QCheck QCheck_alcotest String Wedge_core Wedge_crypto Wedge_httpd Wedge_kernel Wedge_mem Wedge_net Wedge_pop3 Wedge_sim Wedge_sshd
