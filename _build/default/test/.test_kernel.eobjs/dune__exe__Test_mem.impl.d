test/test_mem.ml: Alcotest Bytes Char Gen Hashtbl List Printf QCheck QCheck_alcotest Wedge_kernel Wedge_mem Wedge_sim
