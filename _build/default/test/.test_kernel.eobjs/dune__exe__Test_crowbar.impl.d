test/test_crowbar.ml: Alcotest Array Filename List String Sys Wedge_core Wedge_crowbar Wedge_kernel Wedge_mem Wedge_sim
