test/test_net.ml: Alcotest Buffer Bytes Option String Wedge_net Wedge_sim
