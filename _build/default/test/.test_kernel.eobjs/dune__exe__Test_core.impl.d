test/test_core.ml: Alcotest Bytes Char String Wedge_core Wedge_kernel Wedge_mem Wedge_sim
