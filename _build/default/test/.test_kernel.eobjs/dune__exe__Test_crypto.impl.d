test/test_crypto.ml: Alcotest Bytes Char Hashtbl List Printf QCheck QCheck_alcotest String Wedge_crypto
