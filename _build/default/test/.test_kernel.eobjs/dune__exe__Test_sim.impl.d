test/test_sim.ml: Alcotest Buffer Wedge_sim
