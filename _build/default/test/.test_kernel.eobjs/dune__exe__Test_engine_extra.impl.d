test/test_engine_extra.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Wedge_core Wedge_crypto Wedge_httpd Wedge_kernel Wedge_mem Wedge_net Wedge_sim
