test/test_engine_extra.mli:
