test/test_pop3.ml: Alcotest List Option Wedge_core Wedge_kernel Wedge_net Wedge_pop3 Wedge_sim
