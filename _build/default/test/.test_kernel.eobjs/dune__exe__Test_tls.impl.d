test/test_tls.ml: Alcotest Buffer Bytes Char Gen Hashtbl List Option Printf QCheck QCheck_alcotest String Wedge_crypto Wedge_net Wedge_sim Wedge_tls
