test/test_spec.ml: Alcotest List Option Wedge_crowbar Wedge_sim Wedge_spec
