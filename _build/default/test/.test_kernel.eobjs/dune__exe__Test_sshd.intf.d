test/test_sshd.mli:
