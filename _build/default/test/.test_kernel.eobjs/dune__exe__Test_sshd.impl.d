test/test_sshd.ml: Alcotest Bytes Char List Option QCheck QCheck_alcotest String Wedge_core Wedge_crypto Wedge_kernel Wedge_net Wedge_sim Wedge_sshd
