test/test_pop3.mli:
