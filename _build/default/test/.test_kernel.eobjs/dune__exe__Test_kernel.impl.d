test/test_kernel.ml: Alcotest Array Bytes Gen List QCheck QCheck_alcotest Wedge_kernel Wedge_sim
