test/test_httpd.ml: Alcotest Buffer Bytes Char Fun List Option String Wedge_core Wedge_crypto Wedge_httpd Wedge_kernel Wedge_mem Wedge_net Wedge_sim Wedge_tls
