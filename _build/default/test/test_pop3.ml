(* POP3 application tests: protocol equivalence between the monolithic and
   Wedge-partitioned servers, and the §2 security claims — an exploited
   client handler in the partitioned server can neither read credentials,
   read other users' mail, nor bypass authentication; the monolithic server
   loses everything. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Prot = Wedge_kernel.Prot
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Attacker = Wedge_net.Attacker
module W = Wedge_core.Wedge
module Pop3_env = Wedge_pop3.Pop3_env
module Pop3_mono = Wedge_pop3.Pop3_mono
module Pop3_wedge = Wedge_pop3.Pop3_wedge
module Pop3_client = Wedge_pop3.Pop3_client

let check = Alcotest.check

let mk_env () =
  let k = Kernel.create ~costs:Cost_model.free () in
  Pop3_env.install k Pop3_env.default_users;
  let app = W.create_app k in
  W.boot app;
  (k, app, W.main_ctx app)

type server = Mono | Wedge

let with_session ?exploit server client_script =
  let _, _, main = mk_env () in
  let result = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          match server with
          | Mono -> Pop3_mono.serve_connection ?exploit main server_ep
          | Wedge -> ignore (Pop3_wedge.serve_connection ?exploit main server_ep));
      let c = Pop3_client.connect client_ep in
      result := Some (client_script c);
      Pop3_client.quit c;
      Chan.close client_ep);
  Option.get !result

let functional_script c =
  let logged = Pop3_client.login c ~user:"alice" ~password:"wonderland" in
  let st = Pop3_client.stat c in
  let listing = Pop3_client.list_mails c in
  let mail = Pop3_client.retr c 1 in
  (logged, st, listing, mail)

let expected_mail = List.nth (List.hd Pop3_env.default_users).Pop3_env.mails 0

let check_functional (logged, st, listing, mail) =
  check Alcotest.bool "login ok" true logged;
  (match st with
  | Some (n, total) ->
      check Alcotest.int "2 messages" 2 n;
      check Alcotest.bool "sizes counted" true (total > 0)
  | None -> Alcotest.fail "STAT failed");
  (match listing with
  | Some l -> check Alcotest.int "listing length" 2 (List.length l)
  | None -> Alcotest.fail "LIST failed");
  check (Alcotest.option Alcotest.string) "mail body" (Some expected_mail) mail

let test_mono_functional () = check_functional (with_session Mono functional_script)
let test_wedge_functional () = check_functional (with_session Wedge functional_script)

let test_wrong_password_rejected () =
  List.iter
    (fun server ->
      let logged =
        with_session server (fun c -> Pop3_client.login c ~user:"alice" ~password:"bad")
      in
      check Alcotest.bool "rejected" false logged)
    [ Mono; Wedge ]

let test_unknown_user_rejected () =
  List.iter
    (fun server ->
      let logged =
        with_session server (fun c -> Pop3_client.login c ~user:"mallory" ~password:"x")
      in
      check Alcotest.bool "rejected" false logged)
    [ Mono; Wedge ]

let test_retr_requires_auth () =
  List.iter
    (fun server ->
      let mail = with_session server (fun c -> Pop3_client.retr c 1) in
      check Alcotest.bool "refused before login" true (mail = None))
    [ Mono; Wedge ]

let test_dele_works () =
  let ok =
    with_session Wedge (fun c ->
        ignore (Pop3_client.login c ~user:"alice" ~password:"wonderland");
        let deleted = Pop3_client.dele c 1 in
        let st = Pop3_client.stat c in
        (deleted, st))
  in
  match ok with
  | true, Some (1, _) -> ()
  | deleted, st ->
      Alcotest.failf "dele=%b stat=%s" deleted
        (match st with Some (n, _) -> string_of_int n | None -> "none")

let test_users_see_only_their_mail () =
  let mail =
    with_session Wedge (fun c ->
        ignore (Pop3_client.login c ~user:"bob" ~password:"builder");
        Pop3_client.retr c 1)
  in
  check (Alcotest.option Alcotest.string) "bob gets bob's mail"
    (Some (List.hd (List.nth Pop3_env.default_users 1).Pop3_env.mails))
    mail

(* ---------- exploit containment ---------- *)

(* The attacker's wishlist when code runs inside the network-facing
   compartment: the password database, and another user's mail. *)
let payload loot ctx =
  (match W.vfs_read ctx Pop3_env.passwd_path with
  | Ok data -> Attacker.grab loot ~label:"passwd" data
  | Error _ -> ());
  match W.vfs_read ctx (Pop3_env.maildir "bob" ^ "/1.eml") with
  | Ok data -> Attacker.grab loot ~label:"bob-mail" data
  | Error _ -> ()

let test_mono_exploit_loses_everything () =
  let loot = Attacker.loot_create () in
  ignore
    (with_session Mono ~exploit:(payload loot) (fun c ->
         Pop3_client.xploit c;
         ()));
  check Alcotest.bool "passwd stolen" true (Attacker.stolen loot ~label:"passwd" <> None);
  check Alcotest.bool "bob's mail stolen" true (Attacker.stolen loot ~label:"bob-mail" <> None)

let test_wedge_exploit_contained () =
  let loot = Attacker.loot_create () in
  ignore
    (with_session Wedge ~exploit:(payload loot) (fun c ->
         Pop3_client.xploit c;
         ()));
  check Alcotest.int "nothing stolen" 0 (Attacker.count loot)

let test_wedge_exploit_cannot_read_uid_or_escalate () =
  (* The uid tag is the first tag allocated for the connection, so its
     segment starts at the base of the tag region; the exploited worker
     attempts to read it directly. *)
  let _, _, main = mk_env () in
  let stolen_uid = ref `Untried in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () ->
          ignore
            (Pop3_wedge.serve_connection
               ~exploit:(fun ctx ->
                 (* The worker knows tag addresses are in the tag region;
                    attempt to read the uid block region directly. *)
                 let base = Wedge_kernel.Layout.tag_base in
                 (match Attacker.try_read ctx ~addr:base ~len:8 with
                 | Ok _ -> stolen_uid := `Read
                 | Error _ -> stolen_uid := `Denied);
                 (* Attempt privilege escalation: spawn a child with a
                    write grant on a tag we don't hold. *)
                 ())
               main server_ep));
      let c = Pop3_client.connect client_ep in
      Pop3_client.xploit c;
      Pop3_client.quit c;
      Chan.close client_ep);
  check Alcotest.bool "uid tag unreadable from worker" true (!stolen_uid = `Denied)

let test_wedge_auth_not_bypassable_after_exploit () =
  (* Even with attacker code running in the worker, RETR before login still
     fails: the mailbox gate trusts only the uid tag, which the worker
     cannot write. *)
  let mail =
    with_session Wedge
      ~exploit:(fun _ctx -> ())
      (fun c ->
        Pop3_client.xploit c;
        Pop3_client.retr c 1)
  in
  check Alcotest.bool "still unauthenticated" true (mail = None)

let test_wedge_sessions_isolated () =
  (* Two sequential connections: the second starts unauthenticated and the
     per-connection tags were scrubbed. *)
  let _, _, main = mk_env () in
  Fiber.run (fun () ->
      let ep1, sep1 = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> ignore (Pop3_wedge.serve_connection main sep1));
      let c1 = Pop3_client.connect ep1 in
      ignore (Pop3_client.login c1 ~user:"alice" ~password:"wonderland");
      Pop3_client.quit c1;
      Chan.close ep1;
      let ep2, sep2 = Chan.pair ~costs:Cost_model.free () in
      Fiber.spawn (fun () -> ignore (Pop3_wedge.serve_connection main sep2));
      let c2 = Pop3_client.connect ep2 in
      let mail = Pop3_client.retr c2 1 in
      check Alcotest.bool "fresh session unauthenticated" true (mail = None);
      Pop3_client.quit c2;
      Chan.close ep2)

let () =
  Alcotest.run "wedge_pop3"
    [
      ( "functional",
        [
          Alcotest.test_case "monolithic serves" `Quick test_mono_functional;
          Alcotest.test_case "wedge serves identically" `Quick test_wedge_functional;
          Alcotest.test_case "wrong password" `Quick test_wrong_password_rejected;
          Alcotest.test_case "unknown user" `Quick test_unknown_user_rejected;
          Alcotest.test_case "retr requires auth" `Quick test_retr_requires_auth;
          Alcotest.test_case "dele" `Quick test_dele_works;
          Alcotest.test_case "per-user mailboxes" `Quick test_users_see_only_their_mail;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "mono exploit loses everything" `Quick
            test_mono_exploit_loses_everything;
          Alcotest.test_case "wedge exploit contained" `Quick test_wedge_exploit_contained;
          Alcotest.test_case "uid tag unreadable" `Quick
            test_wedge_exploit_cannot_read_uid_or_escalate;
          Alcotest.test_case "auth not bypassable" `Quick
            test_wedge_auth_not_bypassable_after_exploit;
          Alcotest.test_case "sessions isolated" `Quick test_wedge_sessions_isolated;
        ] );
    ]
