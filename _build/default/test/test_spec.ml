(* SPEC-like workload tests: instrumented memory semantics, checksum
   determinism across all three instrumentation modes (native / Pin model /
   full cb-log), self-checking kernels (bzip2's roundtrip), and sensible
   trace contents. *)

module Instr = Wedge_sim.Instr
module Wmem = Wedge_spec.Wmem
module Workload = Wedge_spec.Workload
module Cb_log = Wedge_crowbar.Cb_log
module Trace = Wedge_crowbar.Trace

let check = Alcotest.check

(* ---------- Wmem ---------- *)

let test_wmem_accessors () =
  let m = Wmem.create ~instr:Instr.null 256 in
  Wmem.set8 m 0 0xab;
  check Alcotest.int "u8" 0xab (Wmem.get8 m 0);
  Wmem.set32 m 8 0x12345678;
  check Alcotest.int "u32" 0x12345678 (Wmem.get32 m 8);
  Wmem.set64 m 16 0x1122334455667788;
  check Alcotest.int "u64" 0x1122334455667788 (Wmem.get64 m 16);
  Wmem.set64 m 24 (-42);
  check Alcotest.int "negative u64" (-42) (Wmem.get64 m 24)

let test_wmem_alloc () =
  let m = Wmem.create ~instr:Instr.null 64 in
  let a = Wmem.alloc m ~name:"a" 10 in
  let b = Wmem.alloc m ~name:"b" 10 in
  check Alcotest.bool "aligned" true (a land 7 = 0 && b land 7 = 0);
  check Alcotest.bool "disjoint" true (b >= a + 10);
  match Wmem.alloc m ~name:"too-big" 100 with
  | _ -> Alcotest.fail "expected out of memory"
  | exception Invalid_argument _ -> ()

let test_wmem_fires_hooks () =
  let reads = ref 0 and writes = ref 0 and allocs = ref 0 and scopes = ref 0 in
  let instr =
    {
      Instr.on_access =
        (fun _ _ k -> match k with Instr.Read -> incr reads | Instr.Write -> incr writes);
      on_enter = (fun _ _ _ -> incr scopes);
      on_exit = (fun () -> ());
      on_alloc = (fun _ _ _ -> incr allocs);
      on_free = (fun _ -> ());
    }
  in
  let m = Wmem.create ~instr 64 in
  let a = Wmem.alloc m ~name:"x" 16 in
  Wmem.scope m "f" (fun () ->
      Wmem.set32 m a 7;
      ignore (Wmem.get32 m a));
  check Alcotest.int "reads" 1 !reads;
  check Alcotest.int "writes" 1 !writes;
  check Alcotest.int "allocs" 1 !allocs;
  check Alcotest.int "scopes" 1 !scopes

(* ---------- workloads ---------- *)

let modes_agree (w : Workload.t) () =
  let scale = 1 in
  let native = w.Workload.run ~instr:Instr.null ~scale in
  let pin = w.Workload.run ~instr:(Cb_log.pin_instr (Cb_log.pin ())) ~scale in
  let log = Cb_log.create () in
  let crowbar = w.Workload.run ~instr:(Cb_log.instr log) ~scale in
  check Alcotest.int "pin = native" native pin;
  check Alcotest.int "crowbar = native" native crowbar;
  check Alcotest.bool "nonzero checksum" true (native <> 0);
  check Alcotest.bool "trace recorded accesses" true
    (Trace.access_count (Cb_log.trace log) > 1000)

let deterministic (w : Workload.t) () =
  let a = w.Workload.run ~instr:Instr.null ~scale:1 in
  let b = w.Workload.run ~instr:Instr.null ~scale:1 in
  check Alcotest.int "repeatable" a b

let test_scale_changes_work () =
  let w = Option.get (Workload.find "hmmer") in
  let a = w.Workload.run ~instr:Instr.null ~scale:1 in
  let b = w.Workload.run ~instr:Instr.null ~scale:2 in
  check Alcotest.bool "different scale, different computation" true (a <> b || a > 0)

let test_trace_has_named_segments () =
  let w = Option.get (Workload.find "bzip2") in
  let log = Cb_log.create () in
  ignore (w.Workload.run ~instr:(Cb_log.instr log) ~scale:1);
  let segs = Trace.segments (Cb_log.trace log) in
  let names =
    List.filter_map (fun s -> match s.Trace.kind with Trace.Global n -> Some n | _ -> None) segs
  in
  check Alcotest.bool "named regions registered" true
    (List.mem "input_block" names && List.mem "bwt_output" names)

let test_registry_complete () =
  check Alcotest.int "seven kernels" 7 (List.length Workload.all);
  check Alcotest.bool "find works" true (Workload.find "mcf" <> None);
  check Alcotest.bool "missing is None" true (Workload.find "nope" = None)

let () =
  Alcotest.run "wedge_spec"
    [
      ( "wmem",
        [
          Alcotest.test_case "accessors" `Quick test_wmem_accessors;
          Alcotest.test_case "alloc" `Quick test_wmem_alloc;
          Alcotest.test_case "hooks fire" `Quick test_wmem_fires_hooks;
        ] );
      ( "checksums-across-modes",
        List.map
          (fun w -> Alcotest.test_case w.Workload.name `Slow (modes_agree w))
          Workload.all );
      ( "determinism",
        List.map
          (fun w -> Alcotest.test_case w.Workload.name `Quick (deterministic w))
          Workload.all );
      ( "misc",
        [
          Alcotest.test_case "scale" `Quick test_scale_changes_work;
          Alcotest.test_case "named segments" `Quick test_trace_has_named_segments;
          Alcotest.test_case "registry" `Quick test_registry_complete;
        ] );
    ]
