type t = { mutable now : int }

let create () = { now = 0 }
let charge t ns = t.now <- t.now + ns
let now t = t.now
let reset t = t.now <- 0

let time t f =
  let start = t.now in
  let v = f () in
  (v, t.now - start)
