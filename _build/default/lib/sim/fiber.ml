open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Spawn : (unit -> unit) -> unit Effect.t

exception Deadlock of string

type sched = {
  runq : (unit -> unit) Queue.t;
  mutable stamp : int;  (* bumped by [progress] *)
  mutable active : bool;
}

let current : sched option ref = ref None
let in_scheduler () = !current <> None
let progress () = match !current with Some s -> s.stamp <- s.stamp + 1 | None -> ()

let yield () = if in_scheduler () then perform Yield

let spawn f =
  match !current with
  | Some _ -> perform (Spawn f)
  | None -> invalid_arg "Fiber.spawn: not inside Fiber.run"

let wait_until ?(what = "condition") cond =
  match !current with
  | None ->
      if not (cond ()) then
        raise (Deadlock (Printf.sprintf "%s (no scheduler running)" what))
  | Some s ->
      let rec loop last_stamp spins =
        if not (cond ()) then begin
          (* If we have spun through the run queue many times with no global
             progress, every other fiber is blocked too: deadlock. *)
          if s.stamp = last_stamp && spins > 10_000 then
            raise (Deadlock what);
          perform Yield;
          if s.stamp = last_stamp then loop last_stamp (spins + 1)
          else loop s.stamp 0
        end
      in
      loop s.stamp 0

let run main =
  if in_scheduler () then invalid_arg "Fiber.run: nested run";
  let s = { runq = Queue.create (); stamp = 0; active = true } in
  current := Some s;
  let rec exec (f : unit -> unit) : unit =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            current := None;
            raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Queue.push (fun () -> continue k ()) s.runq)
            | Spawn g ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Queue.push (fun () -> exec g) s.runq;
                    continue k ())
            | _ -> None);
      }
  in
  let finish () =
    s.active <- false;
    current := None
  in
  (try
     exec main;
     while not (Queue.is_empty s.runq) do
       let f = Queue.pop s.runq in
       f ()
     done
   with e ->
     finish ();
     raise e);
  finish ()
