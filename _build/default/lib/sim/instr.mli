(** Instrumentation hooks threaded through every simulated memory access.

    This is the seam where Crowbar's [cb-log] attaches (the paper implements
    it with Pin; we substitute explicit hooks, see DESIGN.md §2).  Application
    and workload code calls these hooks on every data access, function entry
    and exit, and allocation; the three execution modes of Figure 9 are three
    implementations of this record:

    - {e Native}: [null] below, all hooks are no-ops;
    - {e Pin}: basic-block accounting only (see {!Wedge_crowbar.Cb_log.pin});
    - {e Crowbar}: full access logging ({!Wedge_crowbar.Cb_log.create}). *)

(** Access mode of a memory operation. *)
type kind =
  | Read
  | Write

(** Provenance of an allocation, used by cb-log to attribute accesses to
    allocation sites. *)
type alloc_kind =
  | Heap             (** untagged per-sthread heap ([malloc]) *)
  | Tagged of int * string
      (** [smalloc] from a tag: id and programmer-visible name *)
  | Stack of string  (** a function's stack frame (function name) *)
  | Global of string (** a named global variable *)

type t = {
  on_access : int -> int -> kind -> unit;
      (** [on_access addr len kind] fires on every load and store. *)
  on_enter : string -> string -> int -> unit;
      (** [on_enter fn file line] fires on function entry. *)
  on_exit : unit -> unit;  (** fires on function exit. *)
  on_alloc : int -> int -> alloc_kind -> unit;
      (** [on_alloc base len kind] registers a new memory segment. *)
  on_free : int -> unit;  (** [on_free base] retires a segment. *)
}

val null : t
(** The no-op instrumentation ("native" execution). *)

val is_null : t -> bool
(** [is_null t] is [true] iff [t] is physically {!null}; lets hot paths skip
    hook dispatch entirely when uninstrumented. *)

val scoped : t -> name:string -> file:string -> line:int -> (unit -> 'a) -> 'a
(** [scoped t ~name ~file ~line f] brackets [f] with [on_enter]/[on_exit],
    restoring balance even if [f] raises. *)
