(** Simulated time.

    One clock per simulated machine; every charged operation advances it.
    Benchmarks read elapsed simulated nanoseconds to reproduce the paper's
    timing results deterministically. *)

type t

val create : unit -> t
(** A clock at time zero. *)

val charge : t -> int -> unit
(** [charge t ns] advances simulated time by [ns] nanoseconds. *)

val now : t -> int
(** Current simulated time in nanoseconds since creation. *)

val reset : t -> unit
(** Rewind to zero. *)

val time : t -> (unit -> 'a) -> 'a * int
(** [time t f] runs [f] and returns its result together with the simulated
    nanoseconds charged during the run. *)
