(** Named operation counters for the simulated kernel.

    Used by benchmarks and tests to assert {e how many} primitive operations
    an experiment performed (e.g. callgates invoked per Apache request,
    tag-cache hit rates). *)

type t

val create : unit -> t

val bump : t -> string -> unit
(** Increment the named counter by one. *)

val add : t -> string -> int -> unit
(** Increment the named counter by [n]. *)

val get : t -> string -> int
(** Current value, 0 if never bumped. *)

val reset : t -> unit

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit
