type kind =
  | Read
  | Write

type alloc_kind =
  | Heap
  | Tagged of int * string
  | Stack of string
  | Global of string

type t = {
  on_access : int -> int -> kind -> unit;
  on_enter : string -> string -> int -> unit;
  on_exit : unit -> unit;
  on_alloc : int -> int -> alloc_kind -> unit;
  on_free : int -> unit;
}

let null =
  {
    on_access = (fun _ _ _ -> ());
    on_enter = (fun _ _ _ -> ());
    on_exit = (fun () -> ());
    on_alloc = (fun _ _ _ -> ());
    on_free = (fun _ -> ());
  }

let is_null t = t == null

let scoped t ~name ~file ~line f =
  if is_null t then f ()
  else begin
    t.on_enter name file line;
    match f () with
    | v ->
        t.on_exit ();
        v
    | exception e ->
        t.on_exit ();
        raise e
  end
