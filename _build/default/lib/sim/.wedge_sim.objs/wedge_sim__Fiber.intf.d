lib/sim/fiber.mli:
