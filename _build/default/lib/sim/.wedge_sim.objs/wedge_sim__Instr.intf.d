lib/sim/instr.mli:
