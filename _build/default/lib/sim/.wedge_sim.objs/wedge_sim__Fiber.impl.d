lib/sim/fiber.ml: Effect Printf Queue
