lib/sim/clock.ml:
