lib/sim/clock.mli:
