lib/sim/stats.ml: Format Hashtbl List String
