lib/sim/instr.ml:
