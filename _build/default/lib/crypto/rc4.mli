(** RC4 stream cipher, standing in for the symmetric cipher of the
    SSL record layer.  State is serialisable so partitioned servers can
    keep cipher state in tagged memory shared between the SSL_read and
    SSL_write callgates and nowhere else (§5.1.2, Figure 5). *)

type t

val create : key:bytes -> t
val crypt : t -> bytes -> bytes
(** Encrypts or decrypts (XOR keystream); advances the state. *)

val copy : t -> t

val state_size : int
(** Bytes needed by {!serialize} (258). *)

val serialize : t -> bytes
val deserialize : bytes -> t
