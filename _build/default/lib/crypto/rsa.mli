(** Textbook-RSA with random padding — the public-key scheme behind the
    mini-SSL handshake and SSH host keys.

    Security note (simulation scope): key sizes default to 512 bits and
    padding is a simple random-prefix scheme; the experiments depend on the
    {e structural} properties — only the private-key holder can decrypt or
    sign, and ciphertexts are non-malleable enough that a simulated
    attacker cannot forge them — not on real-world cryptographic
    strength. *)

type pub = {
  n : Bignum.t;
  e : Bignum.t;
}

type priv = {
  pub : pub;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
}

val keygen : ?bits:int -> Drbg.t -> priv
(** [bits] is the modulus size (default 512). *)

val max_payload : pub -> int
(** Largest plaintext [encrypt] accepts for this key. *)

val encrypt : Drbg.t -> pub -> bytes -> bytes
(** Random-padded encryption; output is [modulus_bytes] long. *)

val decrypt : priv -> bytes -> bytes option
(** [None] on malformed padding or out-of-range ciphertext. *)

val sign : priv -> bytes -> bytes
(** Sign the SHA-256 hash of the message. *)

val verify : pub -> bytes -> signature:bytes -> bool

val pub_to_string : pub -> string
val pub_of_string : string -> pub option
(** Wire encoding for certificates / host keys. *)

val priv_to_string : priv -> string
val priv_of_string : string -> priv option
(** Flat encoding of the whole private key, so partitioned servers can keep
    it in tagged memory and deserialise it inside a callgate. *)

val demo_key : unit -> priv
(** A process-wide 512-bit key generated once from a fixed seed (keygen is
    the slowest operation in the suite; tests and examples share this). *)

val demo_key2 : unit -> priv
(** A second, distinct shared key (e.g. the attacker's). *)
