lib/crypto/drbg.mli:
