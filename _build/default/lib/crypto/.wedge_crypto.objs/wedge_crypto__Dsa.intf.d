lib/crypto/dsa.mli: Bignum Drbg
