lib/crypto/rsa.ml: Bignum Bytes Char Drbg Lazy Prime Printf Sha256 String
