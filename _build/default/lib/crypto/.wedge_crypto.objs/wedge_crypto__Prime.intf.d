lib/crypto/prime.mli: Bignum Drbg
