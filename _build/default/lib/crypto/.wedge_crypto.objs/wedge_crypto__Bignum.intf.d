lib/crypto/bignum.mli: Drbg
