lib/crypto/rc4.ml: Array Bytes Char
