lib/crypto/dsa.ml: Bignum Drbg Lazy Prime Printf Sha256 String
