lib/crypto/hmac.mli:
