lib/crypto/bignum.ml: Array Buffer Bytes Char Drbg List Stdlib String
