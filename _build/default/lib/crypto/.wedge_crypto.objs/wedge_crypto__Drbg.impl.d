lib/crypto/drbg.ml: Bytes Char
