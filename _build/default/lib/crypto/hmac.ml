let block = 64

let mac ~key data =
  let key = if Bytes.length key > block then Sha256.digest key else key in
  let pad fill =
    let b = Bytes.make block fill in
    Bytes.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor Char.code fill))) key;
    b
  in
  let ipad = pad '\x36' and opad = pad '\x5c' in
  let inner = Sha256.init () in
  Sha256.update inner ipad;
  Sha256.update inner data;
  let outer = Sha256.init () in
  Sha256.update outer opad;
  Sha256.update outer (Sha256.final inner);
  Sha256.final outer

let mac_string ~key s = mac ~key (Bytes.of_string s)

let verify ~key data ~tag =
  let expect = mac ~key data in
  Bytes.length tag = Bytes.length expect
  &&
  let diff = ref 0 in
  Bytes.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code (Bytes.get tag i))) expect;
  !diff = 0
