(** Deterministic random bit generator (splitmix64-based).

    All randomness in the simulation flows through explicit [Drbg.t] values
    so experiments are reproducible run to run.  Not cryptographically
    strong — strength is irrelevant inside the simulation, unpredictability
    {e to the simulated attacker} is what matters, and the attacker never
    sees the seed. *)

type t

val create : seed:int -> t
val copy : t -> t
val next64 : t -> int
(** 63 usable pseudo-random bits (OCaml int). *)

val byte : t -> int
val bytes : t -> int -> bytes
val int_below : t -> int -> int
(** Uniform in [0, n). *)
