module B = Bignum

type pub = {
  n : B.t;
  e : B.t;
}

type priv = {
  pub : pub;
  d : B.t;
  p : B.t;
  q : B.t;
}

let e_const = B.of_int 65537

let keygen ?(bits = 512) rng =
  let half = bits / 2 in
  let rec go () =
    let p = Prime.gen_prime rng ~bits:half in
    let q = Prime.gen_prime rng ~bits:(bits - half) in
    if B.equal p q then go ()
    else begin
      let n = B.mul p q in
      let phi = B.mul (B.sub p B.one) (B.sub q B.one) in
      if not (B.equal (B.gcd e_const phi) B.one) then go ()
      else
        let d = B.modinv e_const ~m:phi in
        { pub = { n; e = e_const }; d; p; q }
    end
  in
  go ()

let modulus_bytes pub = (B.num_bits pub.n + 7) / 8

(* Padding: 0x02 || nonzero-random || 0x00 || payload, kept one byte shorter
   than the modulus so the padded value is always < n. *)
let min_pad = 8

let max_payload pub = modulus_bytes pub - 2 - min_pad - 1

let encrypt rng pub msg =
  let k = modulus_bytes pub in
  let mlen = Bytes.length msg in
  if mlen > max_payload pub then invalid_arg "Rsa.encrypt: payload too large";
  let padlen = k - 1 - 2 - mlen in
  let buf = Bytes.create (k - 1) in
  Bytes.set buf 0 '\x02';
  for i = 1 to padlen do
    let rec nz () = match Drbg.byte rng with 0 -> nz () | b -> b in
    Bytes.set buf i (Char.chr (nz ()))
  done;
  Bytes.set buf (padlen + 1) '\x00';
  Bytes.blit msg 0 buf (padlen + 2) mlen;
  let m = B.of_bytes_be buf in
  B.to_bytes_be ~len:k (B.modexp ~base:m ~exp:pub.e ~m:pub.n)

let decrypt priv ct =
  let k = modulus_bytes priv.pub in
  let c = B.of_bytes_be ct in
  if B.compare c priv.pub.n >= 0 then None
  else begin
    let m = B.modexp ~base:c ~exp:priv.d ~m:priv.pub.n in
    if B.num_bits m > 8 * (k - 1) then None
    else
    let buf = B.to_bytes_be ~len:(k - 1) m in
    if Bytes.get buf 0 <> '\x02' then None
    else
      (* Find the 0x00 separator after at least min_pad random bytes. *)
      let rec find i =
        if i >= Bytes.length buf then None
        else if Bytes.get buf i = '\x00' then Some i
        else find (i + 1)
      in
      match find 1 with
      | Some sep when sep >= 1 + min_pad ->
          Some (Bytes.sub buf (sep + 1) (Bytes.length buf - sep - 1))
      | _ -> None
  end

let sign priv msg =
  let h = Sha256.digest msg in
  let m = B.of_bytes_be h in
  let m = B.rem m priv.pub.n in
  B.to_bytes_be ~len:(modulus_bytes priv.pub) (B.modexp ~base:m ~exp:priv.d ~m:priv.pub.n)

let verify pub msg ~signature =
  let h = B.rem (B.of_bytes_be (Sha256.digest msg)) pub.n in
  let s = B.of_bytes_be signature in
  B.compare s pub.n < 0 && B.equal (B.modexp ~base:s ~exp:pub.e ~m:pub.n) h

let pub_to_string pub = Printf.sprintf "rsa:%s:%s" (B.to_hex pub.e) (B.to_hex pub.n)

let pub_of_string s =
  match String.split_on_char ':' s with
  | [ "rsa"; e; n ] -> (
      match (B.of_hex e, B.of_hex n) with
      | e, n when not (B.is_zero n) -> Some { n; e }
      | _ -> None
      | exception Invalid_argument _ -> None)
  | _ -> None

let priv_to_string priv =
  Printf.sprintf "rsapriv:%s:%s:%s:%s:%s" (B.to_hex priv.pub.e) (B.to_hex priv.pub.n)
    (B.to_hex priv.d) (B.to_hex priv.p) (B.to_hex priv.q)

let priv_of_string s =
  match String.split_on_char ':' s with
  | [ "rsapriv"; e; n; d; p; q ] -> (
      match (B.of_hex e, B.of_hex n, B.of_hex d, B.of_hex p, B.of_hex q) with
      | e, n, d, p, q when not (B.is_zero n) -> Some { pub = { n; e }; d; p; q }
      | _ -> None
      | exception Invalid_argument _ -> None)
  | _ -> None

let demo_key =
  let key = lazy (keygen ~bits:512 (Drbg.create ~seed:0xC0FFEE)) in
  fun () -> Lazy.force key

let demo_key2 =
  let key = lazy (keygen ~bits:512 (Drbg.create ~seed:0xBADCAB)) in
  fun () -> Lazy.force key
