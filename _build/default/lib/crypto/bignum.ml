(* Little-endian arrays of 26-bit limbs, normalised (no trailing zero
   limbs).  26-bit limbs keep products within OCaml's 63-bit ints. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec go n acc = if n = 0 then acc else go (n lsr limb_bits) ((n land mask) :: acc) in
  normalize (Array.of_list (List.rev (go n [])))

let one = of_int 1
let two = of_int 2

let to_int (a : t) =
  let n = Array.length a in
  if n * limb_bits > 62 && n > 0 && a.(n - 1) lsl ((n - 1) * limb_bits) < 0 then
    failwith "Bignum.to_int: too large";
  let v = ref 0 in
  for i = n - 1 downto 0 do
    if !v > max_int lsr limb_bits then failwith "Bignum.to_int: too large";
    v := (!v lsl limb_bits) lor a.(i)
  done;
  !v

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let equal a b = compare a b = 0

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0

let is_even (a : t) = Array.length a = 0 || a.(0) land 1 = 0
let bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- v land mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left (a : t) bits : t =
  if is_zero a || bits = 0 then if bits = 0 then a else a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right (a : t) bits : t =
  if bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - off)) land mask else 0 in
        r.(i) <- if off = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

(* Binary long division: O(bits(a) * limbs).  Adequate for the <= 1024-bit
   operands the simulation uses. *)
let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = num_bits a - num_bits b in
    let q = Array.make ((shift / limb_bits) + 1) 0 in
    let r = ref a in
    let d = ref (shift_left b shift) in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end;
      d := shift_right !d 1
    done;
    (normalize q, !r)
  end

let rem a b = snd (divmod a b)

(* Barrett reduction: for a fixed modulus m of k limbs, precompute
   mu = floor(base^(2k) / m); then x mod m for x < base^(2k) costs two
   multiplications instead of a bit-by-bit division.  This is what makes
   512-bit modexp fast enough to run hundreds of simulated SSL handshakes
   in the benchmarks. *)
let barrett m =
  if is_zero m then raise Division_by_zero;
  let k = Array.length m in
  let b2k = shift_left one (2 * k * limb_bits) in
  let mu = fst (divmod b2k m) in
  fun x ->
    if compare x m < 0 then x
    else begin
      let q1 = shift_right x ((k - 1) * limb_bits) in
      let q2 = mul q1 mu in
      let q3 = shift_right q2 ((k + 1) * limb_bits) in
      let qm = mul q3 m in
      let r = ref (if compare x qm >= 0 then sub x qm else x) in
      while compare !r m >= 0 do
        r := sub !r m
      done;
      !r
    end

let modexp ~base:b ~exp ~m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let reduce = barrett m in
    let result = ref one in
    let b = ref (rem b m) in
    let nbits = num_bits exp in
    for i = 0 to nbits - 1 do
      if bit exp i then result := reduce (mul !result !b);
      if i < nbits - 1 then b := reduce (mul !b !b)
    done;
    !result
  end

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

(* Extended Euclid over signed pairs represented as (sign, magnitude). *)
let modinv a ~m =
  let a = rem a m in
  if is_zero a then raise Not_found;
  (* Invariants: r0 = s0*a mod m, r1 = s1*a mod m with signed s. *)
  let rec go r0 s0_sign s0 r1 s1_sign s1 =
    if is_zero r1 then
      if equal r0 one then if s0_sign then sub m (rem s0 m) else rem s0 m
      else raise Not_found
    else begin
      let q, r2 = divmod r0 r1 in
      (* s2 = s0 - q*s1 (signed) *)
      let qs1 = mul q s1 in
      let s2_sign, s2 =
        if s0_sign = s1_sign then
          if compare s0 qs1 >= 0 then (s0_sign, sub s0 qs1) else (not s0_sign, sub qs1 s0)
        else (s0_sign, add s0 qs1)
      in
      go r1 s1_sign s1 r2 s2_sign s2
    end
  in
  go m false zero a false one

let of_bytes_be b =
  let r = ref zero in
  Bytes.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) b;
  !r

let to_bytes_be ?len (a : t) =
  let nbytes = (num_bits a + 7) / 8 in
  let nbytes = max nbytes 1 in
  let out_len = match len with Some l -> l | None -> nbytes in
  if nbytes > out_len then invalid_arg "Bignum.to_bytes_be: value too large for len";
  let b = Bytes.make out_len '\000' in
  let v = ref a in
  for i = out_len - 1 downto out_len - nbytes do
    (match !v with
    | [||] -> ()
    | limbs -> Bytes.set b i (Char.chr (limbs.(0) land 0xff)));
    v := shift_right !v 8
  done;
  b

let of_hex s =
  let r = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' | ' ' -> -1
        | _ -> invalid_arg "Bignum.of_hex"
      in
      if d >= 0 then r := add (shift_left !r 4) (of_int d))
    s;
  !r

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let v = ref a in
    while not (is_zero !v) do
      let digit = (match !v with [||] -> 0 | l -> l.(0)) land 0xf in
      Buffer.add_char buf "0123456789abcdef".[digit];
      v := shift_right !v 4
    done;
    String.init (Buffer.length buf) (fun i -> Buffer.nth buf (Buffer.length buf - 1 - i))
  end

let random_bits rng ~bits =
  if bits <= 0 then invalid_arg "Bignum.random_bits";
  let nbytes = (bits + 7) / 8 in
  let b = Drbg.bytes rng nbytes in
  (* Clear excess top bits, then force the top bit on. *)
  let excess = (nbytes * 8) - bits in
  let top = Char.code (Bytes.get b 0) land (0xff lsr excess) in
  Bytes.set b 0 (Char.chr (top lor (1 lsl (7 - excess))));
  of_bytes_be b

let random_below rng n =
  if is_zero n then invalid_arg "Bignum.random_below: zero bound";
  let bits = num_bits n in
  let rec try_ () =
    let nbytes = (bits + 7) / 8 in
    let b = Drbg.bytes rng nbytes in
    let excess = (nbytes * 8) - bits in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xff lsr excess)));
    let v = of_bytes_be b in
    if compare v n < 0 then v else try_ ()
  in
  try_ ()
