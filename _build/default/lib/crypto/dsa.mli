(** DSA-style signatures over a Schnorr group, for OpenSSH's DSA host keys
    and DSA user authentication (§5.2, Figure 6).  Parameters are sized for
    the simulation (256-bit p, 96-bit q by default). *)

type params = {
  p : Bignum.t;  (** prime modulus *)
  q : Bignum.t;  (** prime order of the subgroup, q | p-1 *)
  g : Bignum.t;  (** generator of the order-q subgroup *)
}

type pub = {
  params : params;
  y : Bignum.t;  (** g^x mod p *)
}

type priv = {
  pub : pub;
  x : Bignum.t;
}

val gen_params : ?pbits:int -> ?qbits:int -> Drbg.t -> params
val keygen : Drbg.t -> params -> priv
val sign : Drbg.t -> priv -> bytes -> Bignum.t * Bignum.t
val verify : pub -> bytes -> signature:Bignum.t * Bignum.t -> bool
val demo_params : unit -> params
(** Process-wide parameters from a fixed seed. *)

val pub_to_string : pub -> string
val pub_of_string : string -> pub option
val priv_to_string : priv -> string
val priv_of_string : string -> priv option
val signature_to_string : Bignum.t * Bignum.t -> string
val signature_of_string : string -> (Bignum.t * Bignum.t) option
