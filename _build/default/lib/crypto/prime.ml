module B = Bignum

let small_primes =
  let sieve = Array.make 1000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 999 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 1000 do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  List.filter (fun i -> sieve.(i)) (List.init 1000 (fun i -> i))

let trial_division n =
  (* Returns [Some true] for a definite small prime, [Some false] for a
     definite composite, [None] for "needs Miller-Rabin". *)
  let rec go = function
    | [] -> None
    | p :: rest ->
        let bp = B.of_int p in
        if B.compare n bp = 0 then Some true
        else if B.is_zero (B.rem n bp) then Some false
        else go rest
  in
  go small_primes

let miller_rabin rng ~rounds n =
  (* n odd, > 3.  Write n-1 = d * 2^s. *)
  let n1 = B.sub n B.one in
  let rec split d s = if B.is_even d then split (B.shift_right d 1) (s + 1) else (d, s) in
  let d, s = split n1 0 in
  let witness a =
    let x = B.modexp ~base:a ~exp:d ~m:n in
    if B.equal x B.one || B.equal x n1 then false
    else begin
      let rec loop x i =
        if i >= s - 1 then true
        else
          let x = B.rem (B.mul x x) n in
          if B.equal x n1 then false else loop x (i + 1)
      in
      loop x 0
    end
  in
  let rec rounds_loop i =
    if i >= rounds then true
    else
      let a = B.add B.two (B.random_below rng (B.sub n (B.of_int 4))) in
      if witness a then false else rounds_loop (i + 1)
  in
  rounds_loop 0

let is_prime ?(rounds = 20) rng n =
  if B.compare n B.two < 0 then false
  else if B.equal n B.two then true
  else if B.is_even n then false
  else match trial_division n with Some r -> r | None -> miller_rabin rng ~rounds n

let gen_prime ?(rounds = 20) rng ~bits =
  if bits < 3 then invalid_arg "Prime.gen_prime: bits < 3";
  let rec go () =
    let c = B.random_bits rng ~bits in
    (* Force odd. *)
    let c = if B.is_even c then B.add c B.one else c in
    if B.num_bits c = bits && is_prime ~rounds rng c then c else go ()
  in
  go ()
