module B = Bignum

type params = {
  p : B.t;
  q : B.t;
  g : B.t;
}

type pub = {
  params : params;
  y : B.t;
}

type priv = {
  pub : pub;
  x : B.t;
}

let gen_params ?(pbits = 256) ?(qbits = 96) rng =
  let q = Prime.gen_prime rng ~bits:qbits in
  (* Search p = q*k + 1 prime with the right size. *)
  let rec find_p () =
    let kbits = pbits - qbits in
    let k = B.random_bits rng ~bits:kbits in
    let k = if B.is_even k then k else B.add k B.one in
    let p = B.add (B.mul q k) B.one in
    if B.num_bits p = pbits && Prime.is_prime rng p then (p, k) else find_p ()
  in
  let p, k = find_p () in
  (* g = h^k mod p with order q. *)
  let rec find_g () =
    let h = B.add B.two (B.random_below rng (B.sub p (B.of_int 4))) in
    let g = B.modexp ~base:h ~exp:k ~m:p in
    if B.equal g B.one then find_g () else g
  in
  { p; q; g = find_g () }

let keygen rng params =
  let rec nonzero () =
    let x = B.random_below rng params.q in
    if B.is_zero x then nonzero () else x
  in
  let x = nonzero () in
  { pub = { params; y = B.modexp ~base:params.g ~exp:x ~m:params.p }; x }

let hash_mod msg q = B.rem (B.of_bytes_be (Sha256.digest msg)) q

let rec sign rng priv msg =
  let { p; q; g } = priv.pub.params in
  let k = B.random_below rng q in
  if B.is_zero k then sign rng priv msg
  else begin
    let r = B.rem (B.modexp ~base:g ~exp:k ~m:p) q in
    if B.is_zero r then sign rng priv msg
    else
      let h = hash_mod msg q in
      let kinv = B.modinv k ~m:q in
      let s = B.rem (B.mul kinv (B.add h (B.rem (B.mul priv.x r) q))) q in
      if B.is_zero s then sign rng priv msg else (r, s)
  end

let verify pub msg ~signature:(r, s) =
  let { p; q; g } = pub.params in
  if B.is_zero r || B.compare r q >= 0 || B.is_zero s || B.compare s q >= 0 then false
  else begin
    let w = B.modinv s ~m:q in
    let h = hash_mod msg q in
    let u1 = B.rem (B.mul h w) q in
    let u2 = B.rem (B.mul r w) q in
    let v =
      B.rem (B.rem (B.mul (B.modexp ~base:g ~exp:u1 ~m:p) (B.modexp ~base:pub.y ~exp:u2 ~m:p)) p) q
    in
    B.equal v r
  end

let demo_params =
  let params = lazy (gen_params (Drbg.create ~seed:0xD5A)) in
  fun () -> Lazy.force params

let pub_to_string pub =
  Printf.sprintf "dsa:%s:%s:%s:%s" (B.to_hex pub.params.p) (B.to_hex pub.params.q)
    (B.to_hex pub.params.g) (B.to_hex pub.y)

let pub_of_string s =
  match String.split_on_char ':' s with
  | [ "dsa"; p; q; g; y ] -> (
      match (B.of_hex p, B.of_hex q, B.of_hex g, B.of_hex y) with
      | p, q, g, y when not (B.is_zero p) -> Some { params = { p; q; g }; y }
      | _ -> None
      | exception Invalid_argument _ -> None)
  | _ -> None

let priv_to_string priv =
  Printf.sprintf "dsapriv:%s:%s:%s:%s:%s" (B.to_hex priv.pub.params.p)
    (B.to_hex priv.pub.params.q) (B.to_hex priv.pub.params.g) (B.to_hex priv.pub.y)
    (B.to_hex priv.x)

let priv_of_string s =
  match String.split_on_char ':' s with
  | [ "dsapriv"; p; q; g; y; x ] -> (
      match (B.of_hex p, B.of_hex q, B.of_hex g, B.of_hex y, B.of_hex x) with
      | p, q, g, y, x when not (B.is_zero p) ->
          Some { pub = { params = { p; q; g }; y }; x }
      | _ -> None
      | exception Invalid_argument _ -> None)
  | _ -> None

let signature_to_string (r, s) = B.to_hex r ^ "," ^ B.to_hex s

let signature_of_string s =
  match String.split_on_char ',' s with
  | [ r; sv ] -> (
      match (B.of_hex r, B.of_hex sv) with
      | r, sv -> Some (r, sv)
      | exception Invalid_argument _ -> None)
  | _ -> None
