(** Primality testing and prime generation (Miller–Rabin with small-prime
    trial division). *)

val is_prime : ?rounds:int -> Drbg.t -> Bignum.t -> bool
val gen_prime : ?rounds:int -> Drbg.t -> bits:int -> Bignum.t
(** A random prime with exactly [bits] bits. *)

val small_primes : int list
(** Primes below 1000, used for trial division. *)
