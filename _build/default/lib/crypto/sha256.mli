(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for password hashing, S/Key hash chains, the mini-SSL transcript
    hash and key derivation, and HMAC.  The man-in-the-middle defense of
    §5.1.2 rests on this function's non-invertibility: receive_finished
    hashes attacker-influenced data before it ever reaches send_finished. *)

type ctx

val init : unit -> ctx
val update : ctx -> bytes -> unit
val update_string : ctx -> string -> unit
val final : ctx -> bytes
(** 32-byte digest; the ctx must not be reused afterwards. *)

val digest : bytes -> bytes
val digest_string : string -> bytes
val hex : bytes -> string
(** Lowercase hex of any byte string (not just digests). *)
