(** HMAC-SHA256 (RFC 2104).  The mini-SSL record layer's integrity
    protection: injected ciphertext without the MAC key is dropped, which
    is what confines a man-in-the-middle to the outside of an established
    session (§5.1.2). *)

val mac : key:bytes -> bytes -> bytes
(** 32-byte tag. *)

val mac_string : key:bytes -> string -> bytes
val verify : key:bytes -> bytes -> tag:bytes -> bool
(** Constant-time comparison. *)
