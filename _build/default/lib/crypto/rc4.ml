type t = {
  s : int array;  (* 256-entry permutation *)
  mutable i : int;
  mutable j : int;
}

let create ~key =
  if Bytes.length key = 0 then invalid_arg "Rc4.create: empty key";
  let s = Array.init 256 (fun i -> i) in
  let j = ref 0 in
  for i = 0 to 255 do
    j := (!j + s.(i) + Char.code (Bytes.get key (i mod Bytes.length key))) land 0xff;
    let tmp = s.(i) in
    s.(i) <- s.(!j);
    s.(!j) <- tmp
  done;
  { s; i = 0; j = 0 }

let crypt t data =
  let out = Bytes.create (Bytes.length data) in
  for n = 0 to Bytes.length data - 1 do
    t.i <- (t.i + 1) land 0xff;
    t.j <- (t.j + t.s.(t.i)) land 0xff;
    let tmp = t.s.(t.i) in
    t.s.(t.i) <- t.s.(t.j);
    t.s.(t.j) <- tmp;
    let ks = t.s.((t.s.(t.i) + t.s.(t.j)) land 0xff) in
    Bytes.set out n (Char.chr (Char.code (Bytes.get data n) lxor ks))
  done;
  out

let copy t = { s = Array.copy t.s; i = t.i; j = t.j }

let state_size = 258

let serialize t =
  let b = Bytes.create state_size in
  Array.iteri (fun idx v -> Bytes.set b idx (Char.chr v)) t.s;
  Bytes.set b 256 (Char.chr t.i);
  Bytes.set b 257 (Char.chr t.j);
  b

let deserialize b =
  if Bytes.length b <> state_size then invalid_arg "Rc4.deserialize";
  {
    s = Array.init 256 (fun i -> Char.code (Bytes.get b i));
    i = Char.code (Bytes.get b 256);
    j = Char.code (Bytes.get b 257);
  }
