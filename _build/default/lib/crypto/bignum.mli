(** Arbitrary-precision unsigned integers, from scratch (base 2{^26} limbs),
    sufficient for the RSA/DSA arithmetic the mini-SSL and SSH substrates
    need.  All values are non-negative; [sub] requires a >= b. *)

type t

val zero : t
val one : t
val two : t
val of_int : int -> t
val to_int : t -> int
(** @raise Failure if the value exceeds [max_int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val num_bits : t -> int
val is_even : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** @raise Division_by_zero *)

val rem : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val bit : t -> int -> bool

val modexp : base:t -> exp:t -> m:t -> t
val modinv : t -> m:t -> t
(** Modular inverse. @raise Not_found if not coprime with [m]. *)

val gcd : t -> t -> t

val of_bytes_be : bytes -> t
val to_bytes_be : ?len:int -> t -> bytes
(** Big-endian; left-padded with zeros to [len] when given.
    @raise Invalid_argument if the value does not fit in [len]. *)

val of_hex : string -> t
val to_hex : t -> string

val random_bits : Drbg.t -> bits:int -> t
(** Exactly [bits] bits (top bit set). *)

val random_below : Drbg.t -> t -> t
(** Uniform in [0, n). *)
