type t = { mutable state : int }

let create ~seed = { state = seed lxor 0x1e3779b97f4a7c15 }
let copy t = { state = t.state }

(* splitmix64, truncated to OCaml's 63-bit ints. *)
let next64 t =
  t.state <- (t.state + 0x1e3779b97f4a7c15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb land max_int in
  z lxor (z lsr 31)

let byte t = next64 t land 0xff

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (byte t))
  done;
  b

let int_below t n =
  if n <= 0 then invalid_arg "Drbg.int_below";
  next64 t mod n
