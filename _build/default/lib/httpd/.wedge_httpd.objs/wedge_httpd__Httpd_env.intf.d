lib/httpd/httpd_env.mli: Sess_store Wedge_core Wedge_crypto Wedge_kernel Wedge_mem Wedge_tls
