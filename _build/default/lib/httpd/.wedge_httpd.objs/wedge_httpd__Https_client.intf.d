lib/httpd/https_client.mli: Http Wedge_crypto Wedge_net Wedge_tls
