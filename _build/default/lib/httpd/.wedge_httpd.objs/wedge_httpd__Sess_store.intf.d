lib/httpd/sess_store.mli: Wedge_core Wedge_mem
