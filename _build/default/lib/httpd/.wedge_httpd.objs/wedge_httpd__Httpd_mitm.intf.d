lib/httpd/httpd_mitm.mli: Httpd_env Wedge_core Wedge_kernel Wedge_mem Wedge_net
