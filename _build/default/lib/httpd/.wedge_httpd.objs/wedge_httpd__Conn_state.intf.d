lib/httpd/conn_state.mli: Wedge_core Wedge_tls
