lib/httpd/httpd_simple.ml: Bytes Conn_state Httpd_env Sess_store String Wedge_core Wedge_crypto Wedge_kernel Wedge_mem Wedge_net Wedge_tls
