lib/httpd/https_client.ml: Buffer Bytes Http String Wedge_crypto Wedge_net Wedge_tls
