lib/httpd/conn_state.ml: Bytes String Wedge_core Wedge_tls
