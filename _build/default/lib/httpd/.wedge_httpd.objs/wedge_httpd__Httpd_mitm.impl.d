lib/httpd/httpd_mitm.ml: Bytes Conn_state Httpd_env Option Sess_store String Wedge_core Wedge_crypto Wedge_kernel Wedge_mem Wedge_net Wedge_tls
