lib/httpd/httpd_mono.mli: Httpd_env Wedge_core Wedge_net
