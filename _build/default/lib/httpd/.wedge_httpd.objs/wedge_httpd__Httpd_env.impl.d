lib/httpd/httpd_env.ml: Buffer Http List Printf Sess_store String Wedge_core Wedge_crypto Wedge_kernel Wedge_mem Wedge_sim Wedge_tls
