lib/httpd/sess_store.ml: Bytes String Wedge_core Wedge_kernel Wedge_mem
