lib/httpd/httpd_mono.ml: Bytes Httpd_env String Wedge_core Wedge_kernel Wedge_net Wedge_tls
