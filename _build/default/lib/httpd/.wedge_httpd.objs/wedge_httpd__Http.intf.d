lib/httpd/http.mli:
