lib/httpd/httpd_simple.mli: Httpd_env Wedge_core Wedge_kernel Wedge_mem Wedge_net
