module W = Wedge_core.Wedge
module Record = Wedge_tls.Record

let off_have_master = 0
let off_cr = 1
let off_sr = 33
let off_sidlen = 65
let off_sid = 66
let off_master = 82
let off_have_keys = 114
let off_keys = 115
let size = off_keys + Record.state_size

let init ctx addr = W.write_bytes ctx addr (Bytes.make size '\000')

let set_randoms ctx addr ~cr ~sr ~sid =
  W.write_bytes ctx (addr + off_cr) cr;
  W.write_bytes ctx (addr + off_sr) sr;
  W.write_u8 ctx (addr + off_sidlen) (String.length sid);
  W.write_string ctx (addr + off_sid) sid

let client_random ctx addr = W.read_bytes ctx (addr + off_cr) 32
let server_random ctx addr = W.read_bytes ctx (addr + off_sr) 32

let sid ctx addr =
  let n = W.read_u8 ctx (addr + off_sidlen) in
  W.read_string ctx (addr + off_sid) n

let set_master ctx addr m =
  W.write_u8 ctx (addr + off_have_master) 1;
  W.write_bytes ctx (addr + off_master) m

let master ctx addr =
  if W.read_u8 ctx (addr + off_have_master) = 1 then Some (W.read_bytes ctx (addr + off_master) 32)
  else None

let store_keys ctx addr k =
  W.write_u8 ctx (addr + off_have_keys) 1;
  W.write_bytes ctx (addr + off_keys) (Record.to_bytes k)

let keys ctx addr =
  if W.read_u8 ctx (addr + off_have_keys) = 1 then
    Some (Record.of_bytes (W.read_bytes ctx (addr + off_keys) Record.state_size))
  else None

let ensure_keys ctx addr =
  match keys ctx addr with
  | Some k -> Some k
  | None -> (
      match master ctx addr with
      | None -> None
      | Some m ->
          let k =
            Record.derive ~master:m ~client_random:(client_random ctx addr)
              ~server_random:(server_random ctx addr) ~side:`Server
          in
          store_keys ctx addr k;
          Some k)
