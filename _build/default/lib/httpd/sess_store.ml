module W = Wedge_core.Wedge

(* Layout at [base]:
     +0  u32 live count
     +4  u32 next write slot (FIFO cursor)
     +8  slots: cap x (u8 live ++ sid[16] ++ master[32]) *)

let slot_size = 1 + 16 + 32
let sid_len = 16

type t = {
  tagv : Wedge_mem.Tag.t;
  base : int;
  cap : int;
  mutable enabled : bool;
}

let header = 8
let slot_addr t i = t.base + header + (i * slot_size)

let create ?(cap = 64) ?(enabled = true) ctx =
  let bytes_needed = header + (cap * slot_size) + 64 in
  let pages = Wedge_kernel.Layout.pages_for ~bytes_len:(bytes_needed + 64) in
  let tagv = W.tag_new ~name:"ssl.session_cache" ~pages ctx in
  let base = W.smalloc ctx bytes_needed tagv in
  W.write_u32 ctx base 0;
  W.write_u32 ctx (base + 4) 0;
  for i = 0 to cap - 1 do
    W.write_u8 ctx (base + header + (i * slot_size)) 0
  done;
  { tagv; base; cap; enabled }

let tag t = t.tagv
let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let pad_sid sid =
  if String.length sid > sid_len then String.sub sid 0 sid_len
  else sid ^ String.make (sid_len - String.length sid) '\000'

let find_slot ctx t sid =
  let padded = pad_sid sid in
  let rec go i =
    if i >= t.cap then None
    else if
      W.read_u8 ctx (slot_addr t i) = 1
      && W.read_string ctx (slot_addr t i + 1) sid_len = padded
    then Some i
    else go (i + 1)
  in
  go 0

let store ctx t ~sid ~master =
  if t.enabled then begin
    if Bytes.length master <> 32 then invalid_arg "Sess_store.store: master must be 32 bytes";
    let i =
      match find_slot ctx t sid with
      | Some i -> i
      | None ->
          let cursor = W.read_u32 ctx (t.base + 4) in
          W.write_u32 ctx (t.base + 4) ((cursor + 1) mod t.cap);
          (* bump the live count only when claiming a fresh slot *)
          if W.read_u8 ctx (slot_addr t cursor) = 0 then
            W.write_u32 ctx t.base (W.read_u32 ctx t.base + 1);
          cursor
    in
    W.write_u8 ctx (slot_addr t i) 1;
    W.write_string ctx (slot_addr t i + 1) (pad_sid sid);
    W.write_bytes ctx (slot_addr t i + 1 + sid_len) master
  end

let lookup ctx t ~sid =
  if not t.enabled then None
  else
    match find_slot ctx t sid with
    | Some i -> Some (W.read_bytes ctx (slot_addr t i + 1 + sid_len) 32)
    | None -> None

let size ctx t = W.read_u32 ctx t.base

let flush ctx t =
  W.write_u32 ctx t.base 0;
  W.write_u32 ctx (t.base + 4) 0;
  for i = 0 to t.cap - 1 do
    W.write_u8 ctx (slot_addr t i) 0
  done
