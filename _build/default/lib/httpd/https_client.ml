module Chan = Wedge_net.Chan
module Wire = Wedge_tls.Wire
module Record = Wedge_tls.Record
module Handshake = Wedge_tls.Handshake
module Sha256 = Wedge_crypto.Sha256

type result = {
  response : Http.response option;
  session : Wedge_tls.Handshake.client_session option;
  resumed : bool;
  error : string option;
  keys_fingerprint : string;
}

let content_length s =
  (* crude header scan: "Content-Length: N" *)
  let lower = String.lowercase_ascii s in
  let key = "content-length:" in
  let kl = String.length key in
  let rec find i =
    if i + kl > String.length lower then None
    else if String.sub lower i kl = key then begin
      let rec skip j = if j < String.length s && s.[j] = ' ' then skip (j + 1) else j in
      let start = skip (i + kl) in
      let rec stop j =
        if j < String.length s && s.[j] >= '0' && s.[j] <= '9' then stop (j + 1) else j
      in
      int_of_string_opt (String.sub s start (stop start - start))
    end
    else find (i + 1)
  in
  find 0

let io_of_ep ep =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = Chan.read ep n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> Chan.write ep b)

let get ?resume ~rng ~pinned ~path ep =
  let io = io_of_ep ep in
  let finish r =
    Chan.close ep;
    r
  in
  match Handshake.client_connect ?resume ~rng ~pinned io with
  | Error e ->
      finish
        { response = None; session = None; resumed = false; error = Some e; keys_fingerprint = "" }
  | Ok res -> (
      let keys = res.Handshake.cr_keys in
      let keys_fingerprint = Sha256.hex (Sha256.digest (Record.to_bytes keys)) in
      let base =
        {
          response = None;
          session = Some res.Handshake.cr_session;
          resumed = res.Handshake.cr_resumed;
          error = None;
          keys_fingerprint;
        }
      in
      Handshake.send_data io keys
        (Bytes.of_string (Http.format_request { Http.meth = "GET"; path }));
      (* Servers may deliver the response as several records (header +
         body); accumulate until Content-Length is satisfied. *)
      let buf = Buffer.create 512 in
      let complete () =
        match Http.parse_response (Buffer.contents buf) with
        | Some r -> (
            match content_length (Buffer.contents buf) with
            | Some n -> if String.length r.Http.body >= n then Some r else None
            | None -> Some r)
        | None -> None
      in
      let rec collect () =
        match Handshake.recv_data io keys with
        | Ok reply -> (
            Buffer.add_bytes buf reply;
            match complete () with
            | Some r -> finish { base with response = Some r }
            | None -> collect ())
        | Error `Mac_fail -> finish { base with error = Some "MAC failure on response" }
        | Error (`Eof | `Alert) -> (
            match Http.parse_response (Buffer.contents buf) with
            | Some r -> finish { base with response = Some r }
            | None -> finish { base with error = Some "connection ended" })
      in
      collect ())
