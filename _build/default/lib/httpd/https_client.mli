(** HTTPS test client: handshake (with server-key pinning), one request,
    one response, over a simulated channel.  Plain OCaml — the remote
    user's machine is outside the simulated server host. *)

type result = {
  response : Http.response option;
  session : Wedge_tls.Handshake.client_session option;
      (** for resumption on the next request *)
  resumed : bool;
  error : string option;
  keys_fingerprint : string;
      (** hash of the connection's record-key state right after the
          handshake — lets tests compare session keys across connections
          without exposing them *)
}

val get :
  ?resume:Wedge_tls.Handshake.client_session ->
  rng:Wedge_crypto.Drbg.t ->
  pinned:Wedge_crypto.Rsa.pub ->
  path:string ->
  Wedge_net.Chan.ep ->
  result
(** Fetch [path] over a fresh SSL connection on [ep]; closes the channel
    when done. *)
