(** Shared environment for the Apache/OpenSSL stand-ins: the server RSA key
    held in tagged memory, the SSL session cache, the document root, and
    crypto cost accounting against the simulated clock. *)

type t = {
  app : Wedge_core.Wedge.app;
  main : Wedge_core.Wedge.ctx;
  priv : Wedge_crypto.Rsa.priv;  (** kept outside the simulation only so
                                     tests/clients can pin the public key *)
  key_tag : Wedge_mem.Tag.t;
  key_addr : int;  (** length-value block holding the serialised key *)
  cache : Wedge_tls.Session.t;
      (** in-process cache used by the monolithic server *)
  scache : Sess_store.t;
      (** the partitioned servers' cache, held in tagged memory readable
          only by the session-establishment callgates *)
  rng : Wedge_crypto.Drbg.t;
  mutable served : int;
  worker_sid : string option;
      (** SELinux SID applied to network-facing sthreads when installed
          with [~strict_selinux:true]; [None] = the paper's permissive
          setup (§5) *)
}

val apache_image_pages : int
(** Address-space size of the Apache stand-in (~14 MB): sthread creation
    cost is proportional to this, which is what separates Table 2 from the
    minimal-process microbenchmarks of Figure 7. *)

val docroot : string
val index_body : string

val install :
  ?image_pages:int ->
  ?session_cache:bool ->
  ?strict_selinux:bool ->
  ?seed:int ->
  Wedge_kernel.Kernel.t ->
  t
(** Build the application: document root in the VFS, app booted, private
    key generated and stored in its own tag. *)

val cert : t -> string
val read_priv : Wedge_core.Wedge.ctx -> t -> Wedge_crypto.Rsa.priv
(** Deserialise the private key out of tagged memory — callable only from
    a compartment holding read permission on [key_tag]. *)

(** {2 Crypto cost accounting} *)

type crypto_op =
  | Rsa_priv
  | Rsa_pub
  | Hash of int
  | Cipher of int
  | Mac

val charge : Wedge_core.Wedge.ctx -> crypto_op -> unit

(** {2 Request handling shared by all variants} *)

val handle_request :
  Wedge_core.Wedge.ctx ->
  exploit:(Wedge_core.Wedge.ctx -> unit) option ->
  string ->
  string
(** Parse a request line, serve the file from the caller's filesystem view,
    charge the fixed application cost; "/xploit" triggers the exploit hook
    (the modelled parser vulnerability). *)
