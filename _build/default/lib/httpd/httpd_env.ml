module W = Wedge_core.Wedge
module Kernel = Wedge_kernel.Kernel
module Vfs = Wedge_kernel.Vfs
module Cost_model = Wedge_sim.Cost_model
module Tag = Wedge_mem.Tag
module Rsa = Wedge_crypto.Rsa
module Drbg = Wedge_crypto.Drbg
module Session = Wedge_tls.Session

type t = {
  app : W.app;
  main : W.ctx;
  priv : Rsa.priv;
  key_tag : Tag.t;
  key_addr : int;
  cache : Session.t;
  scache : Sess_store.t;
  rng : Drbg.t;
  mutable served : int;
  worker_sid : string option;
      (* SELinux SID for network-facing sthreads when the strict policy is
         on; [None] reproduces the paper's permissive setup (§5) *)
}

(* ~14 MB image: Apache 1.3 + OpenSSL + loaded modules (vs. the 300-page
   minimal process of the Figure 7 microbenchmarks). *)
let apache_image_pages = 2000

let docroot = "/www"

let index_body =
  let b = Buffer.create 1024 in
  Buffer.add_string b "<html><head><title>wedge-httpd</title></head><body>";
  for i = 1 to 24 do
    Buffer.add_string b (Printf.sprintf "<p>static content line %02d</p>" i)
  done;
  Buffer.add_string b "</body></html>";
  Buffer.contents b

let worker_domain = "httpd_worker_t"

(* The paper grants all system calls via SELinux (§5); [strict_selinux]
   instead locks network-facing sthreads down to the calls they actually
   need, as §3.1 envisages. *)
let configure_strict_selinux kernel =
  let se = kernel.Kernel.selinux in
  Wedge_kernel.Selinux.allow_transition se ~from_:"init_t" ~to_:worker_domain;
  List.iter
    (fun syscall -> Wedge_kernel.Selinux.allow se ~domain:worker_domain ~syscall)
    [ "read"; "write"; "open"; "cgate"; "sthread_join" ]

let install ?(image_pages = apache_image_pages) ?(session_cache = true) ?(strict_selinux = false)
    ?(seed = 0xA9AC4E) kernel =
  let vfs = kernel.Kernel.vfs in
  Vfs.mkdir_p vfs "/var/empty";
  Vfs.mkdir_p vfs docroot;
  Vfs.install vfs ~mode:0o644 (docroot ^ "/index.html") index_body;
  Vfs.install vfs ~mode:0o644 (docroot ^ "/about.html") "<html>about wedge</html>";
  Vfs.install vfs ~mode:0o600 "/etc/shadow" "root:$6$topsecret";
  let app = W.create_app ~image_pages kernel in
  let main = W.main_ctx app in
  W.boot app;
  if strict_selinux then configure_strict_selinux kernel;
  let priv = Rsa.demo_key () in
  let key_tag = W.tag_new ~name:"httpd.privkey" ~pages:1 main in
  let serialized = Rsa.priv_to_string priv in
  let key_addr = W.smalloc main (String.length serialized + 8) key_tag in
  W.write_lv main key_addr serialized;
  let scache = Sess_store.create ~enabled:session_cache main in
  {
    app;
    main;
    priv;
    key_tag;
    key_addr;
    cache = Session.create ~enabled:session_cache ();
    scache;
    rng = Drbg.create ~seed;
    served = 0;
    worker_sid = (if strict_selinux then Some ("system_u:system_r:" ^ worker_domain) else None);
  }

let cert t = Rsa.pub_to_string t.priv.Rsa.pub

let read_priv ctx t =
  match Rsa.priv_of_string (W.read_lv ctx t.key_addr) with
  | Some priv -> priv
  | None -> failwith "httpd: corrupt private key block"

type crypto_op =
  | Rsa_priv
  | Rsa_pub
  | Hash of int
  | Cipher of int
  | Mac

let charge ctx op =
  let cm = (W.kernel (W.app_of ctx)).Kernel.costs in
  let ns =
    match op with
    | Rsa_priv -> cm.Cost_model.rsa_private_op
    | Rsa_pub -> cm.Cost_model.rsa_public_op
    | Hash n -> cm.Cost_model.sha256_per_byte * n
    | Cipher n -> cm.Cost_model.cipher_per_byte * n
    | Mac -> cm.Cost_model.hmac_fixed
  in
  W.charge_app ctx ns

let handle_request ctx ~exploit line =
  let cm = (W.kernel (W.app_of ctx)).Kernel.costs in
  W.charge_app ctx cm.Cost_model.http_app_fixed;
  let resp =
    match Http.parse_request line with
    | None -> Http.forbidden
    | Some { Http.meth; path } ->
        if meth <> "GET" then Http.forbidden
        else if path = "/xploit" then begin
          (match exploit with Some payload -> payload ctx | None -> ());
          Http.not_found
        end
        else begin
          (* The caller's filesystem view decides what is reachable: the
             monolithic server (root "/") finds pages under the docroot
             prefix; chrooted workers resolve the bare path inside their
             jail. *)
          match W.vfs_read ctx (docroot ^ path) with
          | Ok body -> Http.ok body
          | Error _ -> (
              match W.vfs_read ctx path with
              | Ok body -> Http.ok body
              | Error _ -> Http.not_found)
        end
  in
  Http.format_response resp
