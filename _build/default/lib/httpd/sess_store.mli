(** The SSL session cache held in tagged memory.

    Cached master secrets are as sensitive as live ones — an attacker
    holding the cache decrypts every resumed session — so the partitioned
    servers keep the cache in its own tag, granted only to the
    session-establishment callgates.  An exploited worker cannot even name
    it.  Fixed capacity with FIFO eviction, like Apache's SSL session
    cache. *)

type t

val create : ?cap:int -> ?enabled:bool -> Wedge_core.Wedge.ctx -> t
(** Allocate and format the cache in a fresh tag (default capacity 64). *)

val tag : t -> Wedge_mem.Tag.t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val store : Wedge_core.Wedge.ctx -> t -> sid:string -> master:bytes -> unit
(** Insert or update; evicts the oldest entry when full.  The caller's
    context must hold read-write on the cache tag. *)

val lookup : Wedge_core.Wedge.ctx -> t -> sid:string -> bytes option
val size : Wedge_core.Wedge.ctx -> t -> int
val flush : Wedge_core.Wedge.ctx -> t -> unit
