(** The man-in-the-middle partitioning of Apache/OpenSSL (Figures 3–5).

    Two sequential sthreads per connection, started by the master:

    - {e SSL handshake}: reads/writes cleartext on the network and drives
      the handshake, but holds {e no} access to the session-key state.  It
      establishes the key purely through callgates whose only outputs are
      public values and booleans:
      {e new_session}/{e resume_session} (server random generated inside,
      §5.1.1), {e setup_session_key} (RSA private-key decryption),
      {e receive_finished} (verifies the client's Finished, prepares the
      server's into finished-state memory, returns success/failure only)
      and {e send_finished} (seals from finished state, takes no caller
      input).  An exploit here gets neither the session key nor an
      encryption/decryption oracle for it.

    - {e client handler}: started by the master only after the handshake
      sthread exits.  Holds no network descriptor at all; the {e SSL_read}
      callgate (network read permission) and {e SSL_write} callgate
      (network write permission) move data across the MAC'd channel, so
      injected ciphertext dies inside SSL_read and a compromised SSL_read
      still cannot leak plaintext to the wire. *)

type conn_debug = {
  conn_tag : Wedge_mem.Tag.t;  (** session-key state — gates only *)
  fin_tag : Wedge_mem.Tag.t;   (** finished state — the two Finished gates *)
  arg_tag : Wedge_mem.Tag.t;   (** handshake argument buffer *)
  data_tag : Wedge_mem.Tag.t;  (** client handler's user data *)
  conn_block : int;
  arg_block : int;
  data_block : int;
  handshake_status : Wedge_kernel.Process.status;
  handler_status : Wedge_kernel.Process.status option;
      (** [None] when the master refused to start the handler *)
}

val serve_connection :
  ?recycled:bool ->
  ?exploit_handshake:(Wedge_core.Wedge.ctx -> unit) ->
  ?exploit_request:(Wedge_core.Wedge.ctx -> unit) ->
  Httpd_env.t ->
  Wedge_net.Chan.ep ->
  conn_debug
(** Serve one connection (one request).  [exploit_handshake] runs inside
    the handshake sthread just before it exits; [exploit_request] inside
    the client handler on a "/xploit" request. *)
