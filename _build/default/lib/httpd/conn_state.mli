(** Per-connection SSL session state laid out in tagged memory.

    This block (client/server randoms, session id, master secret, record
    cipher state) is the "session key" region of Figures 4 and 5: only the
    callgates hold permissions on its tag, the handshake sthread and client
    handler never do.  All accessors go through the caller's checked
    context, so touching this state without the grant faults. *)

val size : int
(** Bytes needed for one block. *)

val init : Wedge_core.Wedge.ctx -> int -> unit

val set_randoms : Wedge_core.Wedge.ctx -> int -> cr:bytes -> sr:bytes -> sid:string -> unit
val client_random : Wedge_core.Wedge.ctx -> int -> bytes
val server_random : Wedge_core.Wedge.ctx -> int -> bytes
val sid : Wedge_core.Wedge.ctx -> int -> string

val set_master : Wedge_core.Wedge.ctx -> int -> bytes -> unit
val master : Wedge_core.Wedge.ctx -> int -> bytes option

val keys : Wedge_core.Wedge.ctx -> int -> Wedge_tls.Record.keys option
val store_keys : Wedge_core.Wedge.ctx -> int -> Wedge_tls.Record.keys -> unit

val ensure_keys : Wedge_core.Wedge.ctx -> int -> Wedge_tls.Record.keys option
(** Derive server-side record keys from the stored master and randoms if
    not yet present; [None] if no master is set. *)
