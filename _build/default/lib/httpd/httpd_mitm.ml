module W = Wedge_core.Wedge
module Prot = Wedge_kernel.Prot
module Fd_table = Wedge_kernel.Fd_table
module Chan = Wedge_net.Chan
module Tag = Wedge_mem.Tag
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Wire = Wedge_tls.Wire
module Record = Wedge_tls.Record
module Session = Wedge_tls.Session
module Handshake = Wedge_tls.Handshake

type conn_debug = {
  conn_tag : Tag.t;
  fin_tag : Tag.t;
  arg_tag : Tag.t;
  data_tag : Tag.t;
  conn_block : int;
  arg_block : int;
  data_block : int;
  handshake_status : Wedge_kernel.Process.status;
  handler_status : Wedge_kernel.Process.status option;
}

let io_of_fd ctx fd =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = W.fd_read ctx fd n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> W.fd_write ctx fd b)

(* ---------------- handshake-phase callgates (Figure 4) ---------------- *)

(* new_session / resume: the server random is generated inside the gate —
   the network-facing caller supplies only the client's public values. *)
let new_session_entry (env : Httpd_env.t) gctx ~trusted:conn_block ~arg =
  let cr = W.read_bytes gctx (arg + 1) 32 in
  let sr = Drbg.bytes env.Httpd_env.rng 32 in
  let sid = Bytes.to_string (Drbg.bytes env.Httpd_env.rng Handshake.sid_len) in
  Conn_state.init gctx conn_block;
  Conn_state.set_randoms gctx conn_block ~cr ~sr ~sid;
  W.write_bytes gctx (arg + 1) sr;
  W.write_lv gctx (arg + 33) sid;
  1

let resume_entry (env : Httpd_env.t) gctx ~trusted:conn_block ~arg =
  let n = W.read_u8 gctx (arg + 1) in
  let sid = W.read_string gctx (arg + 2) n in
  let cr = W.read_bytes gctx (arg + 2 + n) 32 in
  match Sess_store.lookup gctx env.Httpd_env.scache ~sid with
  | None -> 0
  | Some master ->
      let sr = Drbg.bytes env.Httpd_env.rng 32 in
      Conn_state.init gctx conn_block;
      Conn_state.set_randoms gctx conn_block ~cr ~sr ~sid;
      Conn_state.set_master gctx conn_block master;
      W.write_bytes gctx (arg + 2) sr;
      1

(* setup_session_key: the only code with read access to the private key.
   Returns a boolean; the master secret never leaves the conn tag. *)
let setup_session_key_entry (env : Httpd_env.t) gctx ~trusted:conn_block ~arg =
  let ct = W.read_lv gctx (arg + 1) in
  Httpd_env.charge gctx Httpd_env.Rsa_priv;
  let priv = Httpd_env.read_priv gctx env in
  match Rsa.decrypt priv (Bytes.of_string ct) with
  | Some pm when Bytes.length pm = Handshake.premaster_len ->
      let master = Handshake.derive_master ~premaster:pm in
      Conn_state.set_master gctx conn_block master;
      Sess_store.store gctx env.Httpd_env.scache
        ~sid:(Conn_state.sid gctx conn_block) ~master;
      1
  | Some _ | None -> 0

(* receive_finished: decrypts and verifies the client's Finished; prepares
   the server's Finished payload into finished-state memory.  The only
   value returned to the caller is success/failure — handing ciphertext to
   this gate never yields plaintext (§5.1.2). *)
let receive_finished_entry gctx ~trusted ~arg =
  let conn_block = W.read_u64 gctx trusted in
  let fin_block = W.read_u64 gctx (trusted + 8) in
  let th = W.read_bytes gctx (arg + 1) 32 in
  let record = Bytes.of_string (W.read_lv gctx (arg + 33)) in
  Httpd_env.charge gctx Httpd_env.Mac;
  Httpd_env.charge gctx (Httpd_env.Cipher (Bytes.length record));
  match Conn_state.ensure_keys gctx conn_block with
  | None -> 0
  | Some keys -> (
      match Record.open_ keys record with
      | None ->
          Conn_state.store_keys gctx conn_block keys;
          0
      | Some payload -> (
          Conn_state.store_keys gctx conn_block keys;
          match Conn_state.master gctx conn_block with
          | None -> 0
          | Some master ->
              let expect = Handshake.finished_payload ~master ~side:`Client ~transcript_hash:th in
              if Bytes.equal payload expect then begin
                let sf =
                  Handshake.server_finished_payload ~master ~transcript_hash:th
                    ~client_finished:payload
                in
                W.write_lv gctx fin_block (Bytes.to_string sf);
                1
              end
              else 0))

(* send_finished: takes no caller input at all; seals the prepared payload
   from finished state and returns it via the argument buffer. *)
let send_finished_entry gctx ~trusted ~arg =
  let conn_block = W.read_u64 gctx trusted in
  let fin_block = W.read_u64 gctx (trusted + 8) in
  Httpd_env.charge gctx Httpd_env.Mac;
  match Conn_state.keys gctx conn_block with
  | None -> 0
  | Some keys ->
      let payload = Bytes.of_string (W.read_lv gctx fin_block) in
      if Bytes.length payload = 0 then 0
      else begin
        let record = Record.seal keys payload in
        Conn_state.store_keys gctx conn_block keys;
        W.write_lv gctx (arg + 1) (Bytes.to_string record);
        1
      end

(* ---------------- data-phase callgates (Figure 5) ---------------- *)

(* SSL_read: reads records from the network (it alone holds the read half
   of the descriptor), drops anything failing the MAC, and delivers
   plaintext into the client handler's data buffer. *)
let ssl_read_entry ~fd ~data_block gctx ~trusted:conn_block ~arg:_ =
  match Conn_state.keys gctx conn_block with
  | None -> 0
  | Some keys -> (
      let io = io_of_fd gctx fd in
      let rec next () =
        match Wire.recv_msg io with
        | Wire.App_data, record -> (
            Httpd_env.charge gctx Httpd_env.Mac;
            Httpd_env.charge gctx (Httpd_env.Cipher (Bytes.length record));
            match Record.open_ keys record with
            | Some pt ->
                Conn_state.store_keys gctx conn_block keys;
                W.write_lv gctx data_block (Bytes.to_string pt);
                Bytes.length pt
            | None ->
                (* Forged or corrupted: drop and keep reading (§5.1.2). *)
                next ())
        | Wire.Alert, _ -> 0
        | _, _ -> next ()
        | exception Wire.Closed -> 0
      in
      next ())

(* SSL_write: seals the handler's data buffer onto the network (write-only
   descriptor). *)
let ssl_write_entry ~fd ~data_block gctx ~trusted:conn_block ~arg:_ =
  match Conn_state.keys gctx conn_block with
  | None -> 0
  | Some keys ->
      let pt = W.read_lv gctx data_block in
      Httpd_env.charge gctx Httpd_env.Mac;
      Httpd_env.charge gctx (Httpd_env.Cipher (String.length pt));
      let record = Record.seal keys (Bytes.of_string pt) in
      Conn_state.store_keys gctx conn_block keys;
      W.fd_write gctx fd (Wire.frame Wire.App_data record);
      1

(* ---------------- the handshake sthread's view ---------------- *)

let handshake_ops ctx ~g_new ~g_resume ~g_premaster ~g_recv_fin ~g_send_fin ~arg_tag
    ~arg_block =
  let perms = W.sc_create () in
  W.sc_mem_add perms arg_tag Prot.RW;
  {
    Handshake.new_session =
      (fun ~client_random ->
        W.write_bytes ctx (arg_block + 1) client_random;
        ignore (W.cgate ctx g_new ~perms ~arg:arg_block);
        (W.read_lv ctx (arg_block + 33), W.read_bytes ctx (arg_block + 1) 32));
    resume_session =
      (fun ~sid ~client_random ->
        W.write_u8 ctx (arg_block + 1) (String.length sid);
        W.write_string ctx (arg_block + 2) sid;
        W.write_bytes ctx (arg_block + 2 + String.length sid) client_random;
        if W.cgate ctx g_resume ~perms ~arg:arg_block = 1 then
          Some (W.read_bytes ctx (arg_block + 2) 32)
        else None);
    set_premaster =
      (fun ~premaster_ct ->
        W.write_lv ctx (arg_block + 1) (Bytes.to_string premaster_ct);
        W.cgate ctx g_premaster ~perms ~arg:arg_block = 1);
    receive_finished =
      (fun ~transcript_hash ~record ->
        W.write_bytes ctx (arg_block + 1) transcript_hash;
        W.write_lv ctx (arg_block + 33) (Bytes.to_string record);
        W.cgate ctx g_recv_fin ~perms ~arg:arg_block = 1);
    send_finished =
      (fun () ->
        if W.cgate ctx g_send_fin ~perms ~arg:arg_block = 1 then
          Bytes.of_string (W.read_lv ctx (arg_block + 1))
        else Bytes.empty);
  }

(* ---------------- master: one connection ---------------- *)

let serve_connection ?(recycled = false) ?exploit_handshake ?exploit_request
    (env : Httpd_env.t) ep =
  let main = env.Httpd_env.main in
  (* Per-connection tagged memory (tag-cache reuse applies, §4.1). *)
  let conn_tag = W.tag_new ~name:"httpd.conn" ~pages:1 main in
  let fin_tag = W.tag_new ~name:"httpd.fin" ~pages:1 main in
  let arg_tag = W.tag_new ~name:"httpd.arg" ~pages:2 main in
  let data_tag = W.tag_new ~name:"httpd.data" ~pages:8 main in
  let conn_block = W.smalloc main Conn_state.size conn_tag in
  Conn_state.init main conn_block;
  (* receive/send_finished address both the conn block and the finished
     block; their kernel-held trusted argument points at a pointer pair in
     the conn tag. *)
  let ptr_pair = W.smalloc main 16 conn_tag in
  let fin_block = W.smalloc main 512 fin_tag in
  W.write_u64 main ptr_pair conn_block;
  W.write_u64 main (ptr_pair + 8) fin_block;
  W.write_lv main fin_block "";
  let arg_block = W.smalloc main 4096 arg_tag in
  let data_block = W.smalloc main 20000 data_tag in
  let fd = W.add_endpoint main (Chan.to_endpoint ep) Fd_table.perm_rw in
  (* Policies. *)
  let hs_sc = W.sc_create () in
  let ch_sc = W.sc_create () in
  let mint ?(into = hs_sc) name entry cgsc =
    W.sc_cgate_add ~recycled main into ~name ~entry ~cgsc ~trusted:conn_block
    |> fun g -> g
  in
  let conn_rw = (fun sc -> W.sc_mem_add sc conn_tag Prot.RW; sc) in
  let g_new = mint "ssl.new_session" (new_session_entry env) (conn_rw (W.sc_create ())) in
  let g_resume =
    let cgsc = conn_rw (W.sc_create ()) in
    W.sc_mem_add cgsc (Sess_store.tag env.Httpd_env.scache) Prot.RW;
    mint "ssl.resume" (resume_entry env) cgsc
  in
  let g_premaster =
    let cgsc = conn_rw (W.sc_create ()) in
    W.sc_mem_add cgsc env.Httpd_env.key_tag Prot.R;
    W.sc_mem_add cgsc (Sess_store.tag env.Httpd_env.scache) Prot.RW;
    mint "setup_session_key" (setup_session_key_entry env) cgsc
  in
  let g_recv_fin =
    let cgsc = conn_rw (W.sc_create ()) in
    W.sc_mem_add cgsc fin_tag Prot.RW;
    W.sc_cgate_add ~recycled main hs_sc ~name:"receive_finished" ~entry:receive_finished_entry
      ~cgsc ~trusted:ptr_pair
  in
  let g_send_fin =
    let cgsc = conn_rw (W.sc_create ()) in
    W.sc_mem_add cgsc fin_tag Prot.R;
    W.sc_cgate_add ~recycled main hs_sc ~name:"send_finished" ~entry:send_finished_entry ~cgsc
      ~trusted:ptr_pair
  in
  let g_ssl_read =
    let cgsc = conn_rw (W.sc_create ()) in
    W.sc_mem_add cgsc data_tag Prot.RW;
    W.sc_fd_add cgsc fd Fd_table.perm_r;
    W.sc_cgate_add ~recycled main ch_sc ~name:"ssl_read"
      ~entry:(ssl_read_entry ~fd ~data_block) ~cgsc ~trusted:conn_block
  in
  let g_ssl_write =
    let cgsc = conn_rw (W.sc_create ()) in
    W.sc_mem_add cgsc data_tag Prot.R;
    W.sc_fd_add cgsc fd Fd_table.perm_w;
    W.sc_cgate_add ~recycled main ch_sc ~name:"ssl_write"
      ~entry:(ssl_write_entry ~fd ~data_block) ~cgsc ~trusted:conn_block
  in
  (* Phase 1: the SSL handshake sthread. *)
  W.sc_mem_add hs_sc arg_tag Prot.RW;
  W.sc_fd_add hs_sc fd Fd_table.perm_rw;
  W.sc_set_uid hs_sc 33;
  W.sc_set_root hs_sc "/var/empty";
  (match env.Httpd_env.worker_sid with
  | Some sid -> W.sc_sel_context hs_sc sid
  | None -> ());
  let hs_handle =
    W.sthread_create main hs_sc
      (fun ctx _ ->
        let io = io_of_fd ctx fd in
        let ops =
          handshake_ops ctx ~g_new ~g_resume ~g_premaster ~g_recv_fin ~g_send_fin ~arg_tag
            ~arg_block
        in
        let result =
          match Handshake.server_handshake ~ops ~cert:(Httpd_env.cert env) io with
          | Ok _sid -> 0
          | Error _ -> 1
        in
        (match exploit_handshake with Some payload -> payload ctx | None -> ());
        result)
      0
  in
  let hs_result = W.sthread_join main hs_handle in
  (* Phase 2: the master starts the client handler only after a clean
     handshake exit (Figure 3). *)
  let handler_handle =
    if hs_result <> 0 then None
    else begin
      W.sc_mem_add ch_sc data_tag Prot.RW;
      W.sc_set_uid ch_sc 33;
      W.sc_set_root ch_sc Httpd_env.docroot;
      (match env.Httpd_env.worker_sid with
      | Some sid -> W.sc_sel_context ch_sc sid
      | None -> ());
      Some
        (W.sthread_create main ch_sc
           (fun ctx _ ->
             let no_perms = W.sc_create () in
             let n = W.cgate ctx g_ssl_read ~perms:no_perms ~arg:0 in
             if n <= 0 then 1
             else begin
               let req = W.read_lv ctx data_block in
               let resp = Httpd_env.handle_request ctx ~exploit:exploit_request req in
               (* Header and body go out as separate records, as Apache
                  does — SSL_write is one of the callgates "invoked more
                  than once per request" (§6). *)
               let split =
                 let rec find i =
                   if i + 4 > String.length resp then String.length resp
                   else if String.sub resp i 4 = "\r\n\r\n" then i + 4
                   else find (i + 1)
                 in
                 find 0
               in
               W.write_lv ctx data_block (String.sub resp 0 split);
               ignore (W.cgate ctx g_ssl_write ~perms:no_perms ~arg:0);
               if split < String.length resp then begin
                 W.write_lv ctx data_block
                   (String.sub resp split (String.length resp - split));
                 ignore (W.cgate ctx g_ssl_write ~perms:no_perms ~arg:0)
               end;
               env.Httpd_env.served <- env.Httpd_env.served + 1;
               0
             end)
           0)
    end
  in
  (match handler_handle with Some h -> ignore (W.sthread_join main h) | None -> ());
  W.fd_close main fd;
  Chan.close ep;
  let debug =
    {
      conn_tag;
      fin_tag;
      arg_tag;
      data_tag;
      conn_block;
      arg_block;
      data_block;
      handshake_status = W.handle_status hs_handle;
      handler_status = Option.map W.handle_status handler_handle;
    }
  in
  W.tag_delete main conn_tag;
  W.tag_delete main fin_tag;
  W.tag_delete main arg_tag;
  W.tag_delete main data_tag;
  debug
