(** SELinux-style system-call policy, simplified to the features Wedge uses
    (§3.1): a security identifier (SID) of the form [user:role:type] is
    attached to each sthread; the [type] (domain) names a set of permitted
    system calls, and changing SID on sthread creation requires an allowed
    domain transition in the system-wide policy. *)

type t

val create : ?default_allow:bool -> unit -> t
(** [default_allow] (default [true]) controls whether SIDs without an
    explicit domain entry may make any system call; the paper's
    applications explicitly grant all system calls (§5), so the permissive
    default mirrors that setup while tests exercise restrictive domains. *)

val domain_of_sid : string -> string
(** The [type] component of [user:role:type] (the whole string if it has no
    colons). *)

val allow : t -> domain:string -> syscall:string -> unit
val allow_all_syscalls : t -> domain:string -> unit
val check : t -> sid:string -> syscall:string -> bool
val allow_transition : t -> from_:string -> to_:string -> unit
val may_transition : t -> from_:string -> to_:string -> bool
(** Identity transitions are always allowed. *)
