type error =
  | Enoent
  | Eacces
  | Enotdir
  | Eisdir
  | Eexist

let error_to_string = function
  | Enoent -> "no such file or directory"
  | Eacces -> "permission denied"
  | Enotdir -> "not a directory"
  | Eisdir -> "is a directory"
  | Eexist -> "file exists"

type meta = {
  mutable uid : int;
  mutable mode : int;
}

type filenode = {
  mutable data : string;
  fmeta : meta;
}

type dirnode = {
  entries : (string, node) Hashtbl.t;
  dmeta : meta;
}

and node =
  | File of filenode
  | Dir of dirnode

type t = { root : node }

let mknode_dir ~uid ~mode = Dir { entries = Hashtbl.create 8; dmeta = { uid; mode } }
let create () = { root = mknode_dir ~uid:0 ~mode:0o755 }

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let meta_of = function File f -> f.fmeta | Dir d -> d.dmeta

(* Permission check against owner/other bits; uid 0 bypasses. *)
let permits meta ~uid ~want_read ~want_write =
  uid = 0
  ||
  let m = meta.mode in
  let r, w =
    if uid = meta.uid then (m land 0o400 <> 0, m land 0o200 <> 0)
    else (m land 0o004 <> 0, m land 0o002 <> 0)
  in
  (not want_read || r) && (not want_write || w)

let resolve_from node parts =
  let rec go node = function
    | [] -> Ok node
    | p :: rest -> (
        match node with
        | File _ -> Error Enotdir
        | Dir d -> (
            match Hashtbl.find_opt d.entries p with
            | Some n -> go n rest
            | None -> Error Enoent))
  in
  go node parts

(* Resolve [path] under [root] (the chroot): the effective path is
   root/path; ".." is not supported so a chroot can never be escaped. *)
let resolve t ~root path =
  let parts = split_path root @ split_path path in
  resolve_from t.root parts

let rec mkdir_p_node node parts ~uid ~mode =
  match parts with
  | [] -> node
  | p :: rest -> (
      match node with
      | File _ -> invalid_arg "Vfs.mkdir_p: path component is a file"
      | Dir d ->
          let child =
            match Hashtbl.find_opt d.entries p with
            | Some n -> n
            | None ->
                let n = mknode_dir ~uid ~mode in
                Hashtbl.add d.entries p n;
                n
          in
          mkdir_p_node child rest ~uid ~mode)

let mkdir_p t ?(uid = 0) ?(mode = 0o755) path =
  ignore (mkdir_p_node t.root (split_path path) ~uid ~mode)

let install t ?(uid = 0) ?(mode = 0o644) path contents =
  let parts = split_path path in
  match List.rev parts with
  | [] -> invalid_arg "Vfs.install: empty path"
  | name :: rev_dir -> (
      let dir = mkdir_p_node t.root (List.rev rev_dir) ~uid:0 ~mode:0o755 in
      match dir with
      | File _ -> invalid_arg "Vfs.install: parent is a file"
      | Dir d -> (
          match Hashtbl.find_opt d.entries name with
          | Some (File f) -> f.data <- contents
          | Some (Dir _) -> invalid_arg "Vfs.install: path is a directory"
          | None ->
              Hashtbl.add d.entries name (File { data = contents; fmeta = { uid; mode } })))

let read_file t ~root ~uid path =
  match resolve t ~root path with
  | Error e -> Error e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File f) ->
      if permits f.fmeta ~uid ~want_read:true ~want_write:false then Ok f.data
      else Error Eacces

let find_parent t ~root path =
  let parts = split_path root @ split_path path in
  match List.rev parts with
  | [] -> Error Eisdir
  | name :: rev_dir -> (
      match resolve_from t.root (List.rev rev_dir) with
      | Error e -> Error e
      | Ok (File _) -> Error Enotdir
      | Ok (Dir d) -> Ok (d, name))

let write_file t ~root ~uid path contents =
  match resolve t ~root path with
  | Ok (File f) ->
      if permits f.fmeta ~uid ~want_read:false ~want_write:true then begin
        f.data <- contents;
        Ok ()
      end
      else Error Eacces
  | Ok (Dir _) -> Error Eisdir
  | Error Enoent -> (
      match find_parent t ~root path with
      | Error e -> Error e
      | Ok (d, name) ->
          if permits d.dmeta ~uid ~want_read:false ~want_write:true then begin
            Hashtbl.replace d.entries name
              (File { data = contents; fmeta = { uid; mode = 0o644 } });
            Ok ()
          end
          else Error Eacces)
  | Error e -> Error e

let append_file t ~root ~uid path contents =
  match resolve t ~root path with
  | Ok (File f) ->
      if permits f.fmeta ~uid ~want_read:false ~want_write:true then begin
        f.data <- f.data ^ contents;
        Ok ()
      end
      else Error Eacces
  | Ok (Dir _) -> Error Eisdir
  | Error Enoent -> write_file t ~root ~uid path contents
  | Error e -> Error e

let unlink t ~root ~uid path =
  match find_parent t ~root path with
  | Error e -> Error e
  | Ok (d, name) -> (
      match Hashtbl.find_opt d.entries name with
      | None -> Error Enoent
      | Some _ ->
          if permits d.dmeta ~uid ~want_read:false ~want_write:true then begin
            Hashtbl.remove d.entries name;
            Ok ()
          end
          else Error Eacces)

let readdir t ~root ~uid path =
  match resolve t ~root path with
  | Error e -> Error e
  | Ok (File _) -> Error Enotdir
  | Ok (Dir d) ->
      if permits d.dmeta ~uid ~want_read:true ~want_write:false then
        Ok (Hashtbl.fold (fun k _ acc -> k :: acc) d.entries [] |> List.sort String.compare)
      else Error Eacces

let exists t ~root path = match resolve t ~root path with Ok _ -> true | Error _ -> false

let file_size t ~root ~uid path =
  match read_file t ~root ~uid path with
  | Ok data -> Ok (String.length data)
  | Error e -> Error e

let chown t path ~uid =
  match resolve t ~root:"/" path with
  | Ok n -> (meta_of n).uid <- uid
  | Error _ -> invalid_arg ("Vfs.chown: " ^ path)

let chmod t path ~mode =
  match resolve t ~root:"/" path with
  | Ok n -> (meta_of n).mode <- mode
  | Error _ -> invalid_arg ("Vfs.chmod: " ^ path)

let stat_uid t path =
  match resolve t ~root:"/" path with
  | Ok n -> Ok (meta_of n).uid
  | Error e -> Error e
