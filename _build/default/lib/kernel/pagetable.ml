type pte = {
  mutable frame : int;
  mutable prot : Prot.page;
  mutable tag : int option;
}

type t = (int, pte) Hashtbl.t

let create () : t = Hashtbl.create 512

let map t ~vpn ~frame ~prot ~tag =
  if Hashtbl.mem t vpn then
    invalid_arg (Printf.sprintf "Pagetable.map: vpn 0x%x already mapped" vpn);
  Hashtbl.add t vpn { frame; prot; tag }

let unmap t ~vpn =
  match Hashtbl.find_opt t vpn with
  | Some pte ->
      Hashtbl.remove t vpn;
      Some pte
  | None -> None

let find t ~vpn = Hashtbl.find_opt t vpn
let mem t ~vpn = Hashtbl.mem t vpn
let count t = Hashtbl.length t
let iter f t = Hashtbl.iter f t
let fold f t init = Hashtbl.fold f t init
