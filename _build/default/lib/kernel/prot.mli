(** Memory protection modes.

    The paper grants tag permissions as read, read-write or copy-on-write
    (§3.1), and explicitly forbids write-only mappings (§3.1, last
    paragraph).  [grant] is the policy-level permission attached to a tag in
    a security context; [page] is the page-level protection the simulated
    MMU enforces. *)

(** Policy-level permission for a memory tag. *)
type grant =
  | R    (** read-only *)
  | RW   (** read-write *)
  | COW  (** copy-on-write: reads see the shared data, the first write takes
             a private copy *)

(** Page-level protection bits. [pcow] marks a page whose next write must
    first take a private copy of the underlying frame. *)
type page = {
  pr : bool;
  pw : bool;
  pcow : bool;
}

val page_none : page
val page_r : page
val page_rw : page
val page_cow : page

val page_of_grant : grant -> page

val grant_subsumes : parent:grant -> child:grant -> bool
(** Whether a parent holding [parent] on a tag may grant [child] to an
    sthread it creates (§3.1: children get equal or lesser privilege).
    [RW] subsumes everything; [R] and [COW] subsume [R] and [COW] (a
    copy-on-write child of a reader never affects the shared data). *)

val grant_to_string : grant -> string
val page_to_string : page -> string
