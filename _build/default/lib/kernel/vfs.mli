(** In-memory Unix-like filesystem with owners, modes and chroot.

    Supports the partitioned applications: shadow password files readable
    only by root, per-user mail spools and home directories, empty chroot
    jails for unprivileged sthreads (§5.2), and document roots. *)

type error =
  | Enoent
  | Eacces
  | Enotdir
  | Eisdir
  | Eexist

val error_to_string : error -> string

type t

val create : unit -> t
(** Fresh filesystem with a root directory owned by uid 0. *)

(** {2 Administrative interface (no permission checks; test/app setup)} *)

val mkdir_p : t -> ?uid:int -> ?mode:int -> string -> unit
val install : t -> ?uid:int -> ?mode:int -> string -> string -> unit
(** [install t path contents] creates or replaces a file. *)

(** {2 Checked interface (used by compartments through the kernel)}

    All paths are resolved under [root] (the caller's filesystem root, i.e.
    chroot), and permission-checked against [uid] using owner/other mode
    bits; uid 0 bypasses checks. *)

val read_file :
  t -> root:string -> uid:int -> string -> (string, error) result

val write_file :
  t -> root:string -> uid:int -> string -> string -> (unit, error) result
(** Overwrites an existing file or creates a new one in an existing,
    writable directory. *)

val append_file :
  t -> root:string -> uid:int -> string -> string -> (unit, error) result

val unlink : t -> root:string -> uid:int -> string -> (unit, error) result
val readdir : t -> root:string -> uid:int -> string -> (string list, error) result
val exists : t -> root:string -> string -> bool
val file_size : t -> root:string -> uid:int -> string -> (int, error) result
val chown : t -> string -> uid:int -> unit
(** Administrative chown (no checks). *)

val chmod : t -> string -> mode:int -> unit
val stat_uid : t -> string -> (int, error) result
