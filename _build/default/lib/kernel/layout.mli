(** Virtual address-space layout shared by all sthreads of one application.

    Sthreads of the same application see the same layout (they are carved
    out of one original process, §4.1): the data segment holds globals and
    the pristine library image; each sthread has a private heap and stack at
    fixed addresses (private pages, so overlap across sthreads is fine); tag
    segments are allocated from a dedicated non-merging region (§4.1:
    [tag_new] never merges neighbouring mappings). *)

val page_size : int
val data_base : int
val heap_base : int
val heap_pages : int
val stack_base : int
val stack_pages : int
val tag_base : int

type t

val create : unit -> t

val alloc_tag_range : t -> pages:int -> int
(** Reserve an address range for a tag segment; ranges are separated by a
    guard page so neighbouring tags never merge. *)

val pages_for : bytes_len:int -> int
(** Number of pages needed to hold [bytes_len] bytes (at least 1). *)
