lib/kernel/selinux.mli:
