lib/kernel/layout.mli:
