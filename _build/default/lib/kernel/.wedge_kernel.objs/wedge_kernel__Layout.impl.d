lib/kernel/layout.ml: Physmem
