lib/kernel/physmem.ml: Array Bytes Printf Queue
