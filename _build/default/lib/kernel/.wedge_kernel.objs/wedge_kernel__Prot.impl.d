lib/kernel/prot.ml: Printf
