lib/kernel/vm.mli: Pagetable Physmem Prot Wedge_sim
