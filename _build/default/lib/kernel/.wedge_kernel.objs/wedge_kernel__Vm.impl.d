lib/kernel/vm.ml: Bytes Char List Pagetable Physmem Printf Prot Wedge_sim
