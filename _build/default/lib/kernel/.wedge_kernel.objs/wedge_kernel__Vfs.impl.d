lib/kernel/vfs.ml: Hashtbl List String
