lib/kernel/process.ml: Fd_table Vm
