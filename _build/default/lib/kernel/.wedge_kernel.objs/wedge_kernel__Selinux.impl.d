lib/kernel/selinux.ml: Hashtbl String
