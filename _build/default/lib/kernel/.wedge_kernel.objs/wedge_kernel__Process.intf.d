lib/kernel/process.mli: Fd_table Vm
