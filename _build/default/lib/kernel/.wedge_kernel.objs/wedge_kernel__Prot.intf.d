lib/kernel/prot.mli:
