lib/kernel/physmem.mli:
