lib/kernel/kernel.mli: Hashtbl Physmem Process Selinux Vfs Wedge_sim
