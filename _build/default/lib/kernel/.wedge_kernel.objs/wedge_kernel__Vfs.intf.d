lib/kernel/vfs.mli:
