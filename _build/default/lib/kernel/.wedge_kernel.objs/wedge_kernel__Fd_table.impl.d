lib/kernel/fd_table.ml: Hashtbl List Printf
