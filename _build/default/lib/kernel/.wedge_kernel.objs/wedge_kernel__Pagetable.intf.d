lib/kernel/pagetable.mli: Prot
