lib/kernel/pagetable.ml: Hashtbl Printf Prot
