lib/kernel/kernel.ml: Fd_table Hashtbl List Physmem Printf Process Selinux Vfs Vm Wedge_sim
