(** Simulated physical memory: 4 KiB frames with reference counts.

    Frames are shared between address spaces for copy-on-write (the pristine
    snapshot of §4.1) and for tagged-memory mappings; the reference count
    decides whether a COW write can claim the frame in place or must copy. *)

val page_size : int
(** 4096. *)

type t

val create : unit -> t

val alloc : t -> int
(** Allocate a zeroed frame with reference count 1; returns the frame
    number. *)

val get : t -> int -> bytes
(** The backing bytes of a live frame.  O(1).
    @raise Invalid_argument on a dead frame. *)

val incref : t -> int -> unit
val decref : t -> int -> unit
(** [decref] frees the frame when the count reaches zero. *)

val refcount : t -> int -> int
val frames_in_use : t -> int
