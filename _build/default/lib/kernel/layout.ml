let page_size = Physmem.page_size
let data_base = 0x0060_0000
let heap_base = 0x0200_0000
let heap_pages = 256
let stack_base = 0x7ff0_0000
let stack_pages = 16
let tag_base = 0x1000_0000

type t = { mutable next_tag : int }

let create () = { next_tag = tag_base }

let alloc_tag_range t ~pages =
  if pages <= 0 then invalid_arg "Layout.alloc_tag_range: pages <= 0";
  let base = t.next_tag in
  (* +1 guard page: tag segments must never be adjacent (no merging). *)
  t.next_tag <- t.next_tag + ((pages + 1) * page_size);
  base

let pages_for ~bytes_len = max 1 ((bytes_len + page_size - 1) / page_size)
