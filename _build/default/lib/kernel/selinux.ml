type domain_policy =
  | All
  | Some_calls of (string, unit) Hashtbl.t

type t = {
  default_allow : bool;
  domains : (string, domain_policy) Hashtbl.t;
  transitions : (string * string, unit) Hashtbl.t;
}

let create ?(default_allow = true) () =
  { default_allow; domains = Hashtbl.create 8; transitions = Hashtbl.create 8 }

let domain_of_sid sid =
  match String.rindex_opt sid ':' with
  | Some i -> String.sub sid (i + 1) (String.length sid - i - 1)
  | None -> sid

let allow t ~domain ~syscall =
  match Hashtbl.find_opt t.domains domain with
  | Some All -> ()
  | Some (Some_calls h) -> Hashtbl.replace h syscall ()
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace h syscall ();
      Hashtbl.replace t.domains domain (Some_calls h)

let allow_all_syscalls t ~domain = Hashtbl.replace t.domains domain All

let check t ~sid ~syscall =
  let domain = domain_of_sid sid in
  match Hashtbl.find_opt t.domains domain with
  | Some All -> true
  | Some (Some_calls h) -> Hashtbl.mem h syscall
  | None -> t.default_allow

let allow_transition t ~from_ ~to_ =
  Hashtbl.replace t.transitions (domain_of_sid from_, domain_of_sid to_) ()

let may_transition t ~from_ ~to_ =
  let f = domain_of_sid from_ and g = domain_of_sid to_ in
  f = g || Hashtbl.mem t.transitions (f, g)
