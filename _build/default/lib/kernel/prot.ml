type grant =
  | R
  | RW
  | COW

type page = {
  pr : bool;
  pw : bool;
  pcow : bool;
}

let page_none = { pr = false; pw = false; pcow = false }
let page_r = { pr = true; pw = false; pcow = false }
let page_rw = { pr = true; pw = true; pcow = false }
let page_cow = { pr = true; pw = false; pcow = true }

let page_of_grant = function
  | R -> page_r
  | RW -> page_rw
  | COW -> page_cow

let grant_subsumes ~parent ~child =
  match (parent, child) with
  | RW, _ -> true
  | (R | COW), (R | COW) -> true
  | (R | COW), RW -> false

let grant_to_string = function R -> "r" | RW -> "rw" | COW -> "cow"

let page_to_string p =
  Printf.sprintf "%s%s%s"
    (if p.pr then "r" else "-")
    (if p.pw then "w" else "-")
    (if p.pcow then "c" else "-")
