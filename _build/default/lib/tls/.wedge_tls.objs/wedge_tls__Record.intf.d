lib/tls/record.mli:
