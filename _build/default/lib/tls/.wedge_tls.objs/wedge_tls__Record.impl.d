lib/tls/record.ml: Buffer Bytes Char Wedge_crypto
