lib/tls/handshake.mli: Record Session Wedge_crypto Wire
