lib/tls/session.mli:
