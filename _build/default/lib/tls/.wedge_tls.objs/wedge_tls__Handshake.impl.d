lib/tls/handshake.ml: Buffer Bytes Char Record Result Session String Wedge_crypto Wire
