lib/tls/session.ml: Hashtbl
