lib/tls/wire.mli:
