exception Closed

type io = {
  recv : int -> bytes;
  send : bytes -> unit;
}

let io_of_fns ~recv ~send =
  let buf = Buffer.create 256 in
  let recv_exact n =
    while Buffer.length buf < n do
      match recv (n - Buffer.length buf) with
      | Some b when Bytes.length b > 0 -> Buffer.add_bytes buf b
      | Some _ | None -> raise Closed
    done;
    let all = Buffer.to_bytes buf in
    let out = Bytes.sub all 0 n in
    Buffer.clear buf;
    Buffer.add_subbytes buf all n (Bytes.length all - n);
    out
  in
  { recv = recv_exact; send }

type mtype =
  | Client_hello
  | Server_hello
  | Certificate
  | Client_key_exchange
  | Finished
  | App_data
  | Alert

let mtype_to_char = function
  | Client_hello -> 'h'
  | Server_hello -> 'H'
  | Certificate -> 'C'
  | Client_key_exchange -> 'K'
  | Finished -> 'F'
  | App_data -> 'D'
  | Alert -> 'A'

let mtype_of_char = function
  | 'h' -> Some Client_hello
  | 'H' -> Some Server_hello
  | 'C' -> Some Certificate
  | 'K' -> Some Client_key_exchange
  | 'F' -> Some Finished
  | 'D' -> Some App_data
  | 'A' -> Some Alert
  | _ -> None

let frame mtype payload =
  let n = Bytes.length payload in
  if n > 0xffff then invalid_arg "Wire.frame: payload too large";
  let b = Bytes.create (3 + n) in
  Bytes.set b 0 (mtype_to_char mtype);
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr (n land 0xff));
  Bytes.blit payload 0 b 3 n;
  b

let send_msg io mtype payload = io.send (frame mtype payload)

let recv_msg io =
  let hdr = io.recv 3 in
  let mtype =
    match mtype_of_char (Bytes.get hdr 0) with
    | Some t -> t
    | None -> failwith (Printf.sprintf "wssl: bad message type %C" (Bytes.get hdr 0))
  in
  let n = (Char.code (Bytes.get hdr 1) lsl 8) lor Char.code (Bytes.get hdr 2) in
  (mtype, io.recv n)

let parse_frames trace =
  let rec go pos acc =
    if pos + 3 > String.length trace then List.rev acc
    else
      match mtype_of_char trace.[pos] with
      | None -> List.rev acc
      | Some t ->
          let n = (Char.code trace.[pos + 1] lsl 8) lor Char.code trace.[pos + 2] in
          if pos + 3 + n > String.length trace then List.rev acc
          else go (pos + 3 + n) ((t, Bytes.of_string (String.sub trace (pos + 3) n)) :: acc)
  in
  go 0 []
