(** The mini-SSL record layer: per-direction RC4 encryption and
    HMAC-SHA256 integrity with sequence numbers.

    The complete cipher/MAC state serialises to a flat byte image so the
    partitioned server can keep it in tagged memory readable only by the
    SSL_read / SSL_write callgates (Figure 5): callgates load the state,
    process one record, and store the state back. *)

type keys

val derive : master:bytes -> client_random:bytes -> server_random:bytes -> side:[ `Client | `Server ] -> keys
(** Per-connection keys from the session master secret and both randoms;
    the two sides derive mirrored transmit/receive states. *)

val seal : keys -> bytes -> bytes
(** MAC (over sequence number and plaintext) then encrypt; advances the
    transmit sequence number. *)

val open_ : keys -> bytes -> bytes option
(** Decrypt and verify; [None] on MAC failure (the record must be dropped —
    this is what stops injected data in §5.1.2).  Advances the receive
    sequence number only on success. *)

val state_size : int
val to_bytes : keys -> bytes
val of_bytes : bytes -> keys

val mac_key_tx : keys -> bytes
(** Exposed for tests asserting key secrecy end-to-end. *)
