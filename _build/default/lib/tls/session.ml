type t = {
  tbl : (string, bytes) Hashtbl.t;
  mutable enabled : bool;
}

let create ?(enabled = true) () = { tbl = Hashtbl.create 64; enabled }
let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let store t ~sid ~master = if t.enabled then Hashtbl.replace t.tbl sid master
let lookup t ~sid = if t.enabled then Hashtbl.find_opt t.tbl sid else None
let size t = Hashtbl.length t.tbl
let flush t = Hashtbl.reset t.tbl
