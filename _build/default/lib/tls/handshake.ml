module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Sha256 = Wedge_crypto.Sha256
module Hmac = Wedge_crypto.Hmac

let random_len = 32
let premaster_len = 48
let sid_len = 16

(* The transcript keeps the raw framed messages; hashing on demand lets us
   take intermediate hashes (the protocol needs the hash before and after
   the client's Finished). *)
type transcript = Buffer.t

let transcript_create () = Buffer.create 512
let transcript_add t mtype payload = Buffer.add_bytes t (Wire.frame mtype payload)
let transcript_hash t = Sha256.digest_string (Buffer.contents t)

let derive_master ~premaster =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "master";
  Sha256.update ctx premaster;
  Sha256.final ctx

let finished_payload ~master ~side ~transcript_hash =
  let label = match side with `Client -> "client finished" | `Server -> "server finished" in
  Hmac.mac ~key:master (Bytes.cat (Bytes.of_string label) transcript_hash)

(* The server's Finished binds the pre-Finished transcript hash together
   with the client's Finished cleartext; receive_finished hashes them (the
   hash's non-invertibility is what denies an exploited handshake driver an
   encryption oracle, §5.1.2). *)
let server_finished_payload ~master ~transcript_hash ~client_finished =
  let combined = Sha256.digest (Bytes.cat transcript_hash client_finished) in
  finished_payload ~master ~side:`Server ~transcript_hash:combined

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

type client_session = {
  cs_sid : string;
  cs_master : bytes;
}

type client_result = {
  cr_keys : Record.keys;
  cr_session : client_session;
  cr_resumed : bool;
}

let parse_server_hello payload =
  if Bytes.length payload < random_len + 2 then Error "short ServerHello"
  else begin
    let sr = Bytes.sub payload 0 random_len in
    let resumed = Bytes.get payload random_len = '\001' in
    let n = Char.code (Bytes.get payload (random_len + 1)) in
    if Bytes.length payload < random_len + 2 + n then Error "short ServerHello sid"
    else Ok (sr, resumed, Bytes.sub_string payload (random_len + 2) n)
  end

let build_hello ~client_random ~sid =
  let b = Buffer.create 64 in
  Buffer.add_bytes b client_random;
  Buffer.add_char b (Char.chr (String.length sid));
  Buffer.add_string b sid;
  Buffer.to_bytes b

let build_server_hello ~server_random ~resumed ~sid =
  let b = Buffer.create 64 in
  Buffer.add_bytes b server_random;
  Buffer.add_char b (if resumed then '\001' else '\000');
  Buffer.add_char b (Char.chr (String.length sid));
  Buffer.add_string b sid;
  Buffer.to_bytes b

let client_connect ?resume ~rng ~pinned io =
  let ( let* ) = Result.bind in
  try
    let tr = transcript_create () in
    let cr = Drbg.bytes rng random_len in
    let req_sid = match resume with Some s -> s.cs_sid | None -> "" in
    let hello = build_hello ~client_random:cr ~sid:req_sid in
    Wire.send_msg io Wire.Client_hello hello;
    transcript_add tr Wire.Client_hello hello;
    let mt, payload = Wire.recv_msg io in
    if mt <> Wire.Server_hello then Error "expected ServerHello"
    else
      let* sr, resumed, sid = parse_server_hello payload in
      transcript_add tr Wire.Server_hello payload;
      let* master =
        if resumed then
          match resume with
          | Some s when s.cs_sid = sid -> Ok s.cs_master
          | _ -> Error "server resumed a session we did not offer"
        else begin
          let mt, cert = Wire.recv_msg io in
          if mt <> Wire.Certificate then Error "expected Certificate"
          else begin
            transcript_add tr Wire.Certificate cert;
            match Rsa.pub_of_string (Bytes.to_string cert) with
            | None -> Error "unparsable certificate"
            | Some pub ->
                if Rsa.pub_to_string pub <> Rsa.pub_to_string pinned then
                  Error "certificate does not match pinned server key (MITM?)"
                else begin
                  let premaster = Drbg.bytes rng premaster_len in
                  let ct = Rsa.encrypt rng pub premaster in
                  Wire.send_msg io Wire.Client_key_exchange ct;
                  transcript_add tr Wire.Client_key_exchange ct;
                  Ok (derive_master ~premaster)
                end
          end
        end
      in
      let keys = Record.derive ~master ~client_random:cr ~server_random:sr ~side:`Client in
      let th = transcript_hash tr in
      let my_fin = finished_payload ~master ~side:`Client ~transcript_hash:th in
      let record = Record.seal keys my_fin in
      Wire.send_msg io Wire.Finished record;
      let mt, srecord = Wire.recv_msg io in
      if mt <> Wire.Finished then Error "expected server Finished"
      else
        match Record.open_ keys srecord with
        | None -> Error "server Finished failed MAC"
        | Some payload ->
            let expect = server_finished_payload ~master ~transcript_hash:th ~client_finished:my_fin in
            if not (Bytes.equal payload expect) then Error "server Finished mismatch"
            else
              Ok
                {
                  cr_keys = keys;
                  cr_session = { cs_sid = sid; cs_master = master };
                  cr_resumed = resumed;
                }
  with
  | Wire.Closed -> Error "connection closed during handshake"
  | Failure m -> Error m

(* ------------------------------------------------------------------ *)
(* Server                                                              *)

type server_ops = {
  new_session : client_random:bytes -> string * bytes;
  resume_session : sid:string -> client_random:bytes -> bytes option;
  set_premaster : premaster_ct:bytes -> bool;
  receive_finished : transcript_hash:bytes -> record:bytes -> bool;
  send_finished : unit -> bytes;
}

let parse_hello payload =
  if Bytes.length payload < random_len + 1 then Error "short ClientHello"
  else begin
    let cr = Bytes.sub payload 0 random_len in
    let n = Char.code (Bytes.get payload random_len) in
    if Bytes.length payload < random_len + 1 + n then Error "short ClientHello sid"
    else Ok (cr, Bytes.sub_string payload (random_len + 1) n)
  end

let server_handshake ~ops ~cert io =
  let ( let* ) = Result.bind in
  try
    let tr = transcript_create () in
    let mt, payload = Wire.recv_msg io in
    if mt <> Wire.Client_hello then Error "expected ClientHello"
    else
      let* cr, req_sid = parse_hello payload in
      transcript_add tr Wire.Client_hello payload;
      let resumed_sr = if req_sid = "" then None else ops.resume_session ~sid:req_sid ~client_random:cr in
      let sid, sr, resumed =
        match resumed_sr with
        | Some sr -> (req_sid, sr, true)
        | None ->
            let sid, sr = ops.new_session ~client_random:cr in
            (sid, sr, false)
      in
      let shello = build_server_hello ~server_random:sr ~resumed ~sid in
      Wire.send_msg io Wire.Server_hello shello;
      transcript_add tr Wire.Server_hello shello;
      let* () =
        if resumed then Ok ()
        else begin
          let cert_b = Bytes.of_string cert in
          Wire.send_msg io Wire.Certificate cert_b;
          transcript_add tr Wire.Certificate cert_b;
          let mt, ct = Wire.recv_msg io in
          if mt <> Wire.Client_key_exchange then Error "expected ClientKeyExchange"
          else begin
            transcript_add tr Wire.Client_key_exchange ct;
            if ops.set_premaster ~premaster_ct:ct then Ok () else Error "key exchange failed"
          end
        end
      in
      let th = transcript_hash tr in
      let mt, record = Wire.recv_msg io in
      if mt <> Wire.Finished then Error "expected client Finished"
      else if not (ops.receive_finished ~transcript_hash:th ~record) then
        Error "client Finished verification failed"
      else begin
        Wire.send_msg io Wire.Finished (ops.send_finished ());
        Ok sid
      end
  with
  | Wire.Closed -> Error "connection closed during handshake"
  | Failure m -> Error m

(* ------------------------------------------------------------------ *)
(* In-process ops: the monolithic layout                               *)

type plain_state = {
  mutable ps_master : bytes;
  mutable ps_client_random : bytes;
  mutable ps_server_random : bytes;
  mutable ps_sid : string;
  mutable ps_finished : bytes;
  mutable ps_keys : Record.keys option;
}

let plain_state_create () =
  {
    ps_master = Bytes.create 0;
    ps_client_random = Bytes.create 0;
    ps_server_random = Bytes.create 0;
    ps_sid = "";
    ps_finished = Bytes.create 0;
    ps_keys = None;
  }

let plain_ops ~rng ~priv ~cache ~state =
  {
    new_session =
      (fun ~client_random ->
        let sid = Bytes.to_string (Drbg.bytes rng sid_len) in
        let sr = Drbg.bytes rng random_len in
        state.ps_client_random <- client_random;
        state.ps_server_random <- sr;
        state.ps_sid <- sid;
        (sid, sr));
    resume_session =
      (fun ~sid ~client_random ->
        match Session.lookup cache ~sid with
        | None -> None
        | Some master ->
            let sr = Drbg.bytes rng random_len in
            state.ps_master <- master;
            state.ps_client_random <- client_random;
            state.ps_server_random <- sr;
            state.ps_sid <- sid;
            Some sr);
    set_premaster =
      (fun ~premaster_ct ->
        match Rsa.decrypt priv premaster_ct with
        | Some pm when Bytes.length pm = premaster_len ->
            state.ps_master <- derive_master ~premaster:pm;
            true
        | Some _ | None -> false);
    receive_finished =
      (fun ~transcript_hash ~record ->
        let keys =
          match state.ps_keys with
          | Some k -> k
          | None ->
              let k =
                Record.derive ~master:state.ps_master
                  ~client_random:state.ps_client_random
                  ~server_random:state.ps_server_random ~side:`Server
              in
              state.ps_keys <- Some k;
              k
        in
        match Record.open_ keys record with
        | None -> false
        | Some payload ->
            let expect =
              finished_payload ~master:state.ps_master ~side:`Client ~transcript_hash
            in
            if Bytes.equal payload expect then begin
              state.ps_finished <-
                server_finished_payload ~master:state.ps_master ~transcript_hash
                  ~client_finished:payload;
              Session.store cache ~sid:state.ps_sid ~master:state.ps_master;
              true
            end
            else false);
    send_finished =
      (fun () ->
        match state.ps_keys with
        | None -> invalid_arg "send_finished before receive_finished"
        | Some keys -> Record.seal keys state.ps_finished);
  }

let keys_of_plain_state state =
  match state.ps_keys with
  | Some k -> k
  | None -> invalid_arg "keys_of_plain_state: handshake incomplete"

(* ------------------------------------------------------------------ *)
(* Application data                                                    *)

let send_data io keys plaintext = Wire.send_msg io Wire.App_data (Record.seal keys plaintext)

let recv_data io keys =
  match Wire.recv_msg io with
  | Wire.App_data, record -> (
      match Record.open_ keys record with Some pt -> Ok pt | None -> Error `Mac_fail)
  | Wire.Alert, _ -> Error `Alert
  | _ -> Error `Mac_fail
  | exception Wire.Closed -> Error `Eof
