(** The mini-SSL handshake.

    The protocol (RSA key exchange, as §5.1 analyses):

    {v
    C -> S  ClientHello(client_random, old_sid?)
    S -> C  ServerHello(server_random, sid, resumed?)
    [new session only]
    S -> C  Certificate(server RSA public key)
    C -> S  ClientKeyExchange(RSA_enc(pub, premaster))
    [both]
    C -> S  Finished{ HMAC(master, "client finished" ++ transcript_hash) }   (sealed)
    S -> C  Finished{ HMAC(master, "server finished" ++ transcript_hash') }  (sealed)
    v}

    with [master = SHA256("master" ++ premaster)] and per-connection record
    keys derived from [master], [client_random] and [server_random] — so an
    attacker must influence the server random to force session-key reuse,
    which is exactly what the setup_session_key callgate prevents (§5.1.1).

    The {e server} side is expressed against the {!server_ops} callback
    vocabulary: a monolithic server implements the callbacks in-process,
    the Wedge-partitioned server implements each as a callgate, and the
    handshake driver (which reads attacker-controlled cleartext!) never
    touches the master secret or the record keys. *)

type transcript
(** Running hash of all handshake messages framed on the wire. *)

val transcript_create : unit -> transcript
val transcript_add : transcript -> Wire.mtype -> bytes -> unit
val transcript_hash : transcript -> bytes
(** Hash of everything added so far (the transcript keeps accepting
    messages afterwards). *)

val random_len : int
val premaster_len : int
val sid_len : int

val derive_master : premaster:bytes -> bytes
val finished_payload :
  master:bytes -> side:[ `Client | `Server ] -> transcript_hash:bytes -> bytes

val server_finished_payload :
  master:bytes -> transcript_hash:bytes -> client_finished:bytes -> bytes
(** The server's Finished binds the pre-Finished transcript hash and the
    client's Finished cleartext through a hash, so receive_finished can
    prepare it without exposing an encryption oracle (§5.1.2). *)

(** {1 Client} *)

type client_session = {
  cs_sid : string;
  cs_master : bytes;
}

type client_result = {
  cr_keys : Record.keys;
  cr_session : client_session;  (** cache this for resumption *)
  cr_resumed : bool;
}

val client_connect :
  ?resume:client_session ->
  rng:Wedge_crypto.Drbg.t ->
  pinned:Wedge_crypto.Rsa.pub ->
  Wire.io ->
  (client_result, string) result
(** Run the client side.  [pinned] is the expected server key: a
    man-in-the-middle substituting his own certificate is detected here,
    forcing him into the pass-through role §5.1.2 analyses. *)

(** {1 Server} *)

type server_ops = {
  new_session : client_random:bytes -> string * bytes;
      (** Allocate a session: returns (sid, server_random).  The {e server}
          generates its random contribution — never the caller (§5.1.1). *)
  resume_session : sid:string -> client_random:bytes -> bytes option;
      (** Try the session cache; [Some server_random] resumes. *)
  set_premaster : premaster_ct:bytes -> bool;
      (** Decrypt the key exchange with the private key and derive the
          master into protected state; [false] aborts the handshake. *)
  receive_finished : transcript_hash:bytes -> record:bytes -> bool;
      (** Verify the client's Finished; on success prepare the server
          Finished payload in protected state.  Returns only a boolean —
          no decrypted bytes ever flow back (§5.1.2). *)
  send_finished : unit -> bytes;
      (** The sealed server Finished record, built from protected state. *)
}

val server_handshake :
  ops:server_ops -> cert:string -> Wire.io -> (string, string) result
(** Drive the server side of one handshake using [ops]; returns the session
    id on success.  This function is safe to run in an unprivileged
    compartment: it sees only cleartext protocol messages and booleans. *)

(** {1 In-process server ops (for the monolithic server and tests)} *)

type plain_state = {
  mutable ps_master : bytes;
  mutable ps_client_random : bytes;
  mutable ps_server_random : bytes;
  mutable ps_sid : string;
  mutable ps_finished : bytes;  (** prepared server-finished payload *)
  mutable ps_keys : Record.keys option;
}

val plain_state_create : unit -> plain_state

val plain_ops :
  rng:Wedge_crypto.Drbg.t ->
  priv:Wedge_crypto.Rsa.priv ->
  cache:Session.t ->
  state:plain_state ->
  server_ops
(** Callbacks with direct access to the private key and session state — the
    monolithic layout where everything is privileged. *)

val keys_of_plain_state : plain_state -> Record.keys
(** Server record keys after a successful handshake. *)

(** {1 Application data} *)

val send_data : Wire.io -> Record.keys -> bytes -> unit
val recv_data : Wire.io -> Record.keys -> (bytes, [ `Mac_fail | `Eof | `Alert ]) result
