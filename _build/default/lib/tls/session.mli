(** Server-side SSL session cache: session id -> master secret.

    With caching on, a returning client skips the RSA key exchange — the
    workload split that drives the two halves of Table 2. *)

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit
val store : t -> sid:string -> master:bytes -> unit
val lookup : t -> sid:string -> bytes option
val size : t -> int
val flush : t -> unit
