module Sha256 = Wedge_crypto.Sha256
module Hmac = Wedge_crypto.Hmac
module Rc4 = Wedge_crypto.Rc4

type keys = {
  mac_tx : bytes;
  mac_rx : bytes;
  enc_tx : Rc4.t;
  enc_rx : Rc4.t;
  mutable seq_tx : int;
  mutable seq_rx : int;
}

let tag_len = 32

let expand master cr sr label =
  let ctx = Sha256.init () in
  Sha256.update_string ctx label;
  Sha256.update ctx master;
  Sha256.update ctx cr;
  Sha256.update ctx sr;
  Sha256.final ctx

let derive ~master ~client_random ~server_random ~side =
  let mac_c2s = expand master client_random server_random "mac c2s" in
  let mac_s2c = expand master client_random server_random "mac s2c" in
  let key_c2s = expand master client_random server_random "key c2s" in
  let key_s2c = expand master client_random server_random "key s2c" in
  match side with
  | `Client ->
      {
        mac_tx = mac_c2s;
        mac_rx = mac_s2c;
        enc_tx = Rc4.create ~key:key_c2s;
        enc_rx = Rc4.create ~key:key_s2c;
        seq_tx = 0;
        seq_rx = 0;
      }
  | `Server ->
      {
        mac_tx = mac_s2c;
        mac_rx = mac_c2s;
        enc_tx = Rc4.create ~key:key_s2c;
        enc_rx = Rc4.create ~key:key_c2s;
        seq_tx = 0;
        seq_rx = 0;
      }

let seq_bytes seq =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((seq lsr (8 * (7 - i))) land 0xff))
  done;
  b

let seal k plaintext =
  let tag =
    Hmac.mac ~key:k.mac_tx (Bytes.cat (seq_bytes k.seq_tx) plaintext)
  in
  k.seq_tx <- k.seq_tx + 1;
  Rc4.crypt k.enc_tx (Bytes.cat plaintext tag)

let open_ k record =
  if Bytes.length record < tag_len then None
  else begin
    (* Decrypt speculatively on a copy of the cipher state: a forged record
       must not desynchronise the stream cipher. *)
    let rc4 = Rc4.copy k.enc_rx in
    let pt_tag = Rc4.crypt rc4 record in
    let n = Bytes.length pt_tag - tag_len in
    let pt = Bytes.sub pt_tag 0 n in
    let tag = Bytes.sub pt_tag n tag_len in
    if Hmac.verify ~key:k.mac_rx (Bytes.cat (seq_bytes k.seq_rx) pt) ~tag then begin
      k.seq_rx <- k.seq_rx + 1;
      (* Commit the cipher state advance. *)
      ignore (Rc4.crypt k.enc_rx record);
      Some pt
    end
    else None
  end

let state_size = 32 + 32 + Rc4.state_size + Rc4.state_size + 8 + 8

let to_bytes k =
  let b = Buffer.create state_size in
  Buffer.add_bytes b k.mac_tx;
  Buffer.add_bytes b k.mac_rx;
  Buffer.add_bytes b (Rc4.serialize k.enc_tx);
  Buffer.add_bytes b (Rc4.serialize k.enc_rx);
  Buffer.add_bytes b (seq_bytes k.seq_tx);
  Buffer.add_bytes b (seq_bytes k.seq_rx);
  Buffer.to_bytes b

let of_bytes b =
  if Bytes.length b <> state_size then invalid_arg "Record.of_bytes";
  let off = ref 0 in
  let take n =
    let s = Bytes.sub b !off n in
    off := !off + n;
    s
  in
  let mac_tx = take 32 in
  let mac_rx = take 32 in
  let enc_tx = Rc4.deserialize (take Rc4.state_size) in
  let enc_rx = Rc4.deserialize (take Rc4.state_size) in
  let seq_of s = Bytes.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 s in
  let seq_tx = seq_of (take 8) in
  let seq_rx = seq_of (take 8) in
  { mac_tx; mac_rx; enc_tx; enc_rx; seq_tx; seq_rx }

let mac_key_tx k = k.mac_tx
