(** Message framing for the mini-SSL protocol ("wssl").

    Each message is [type byte ++ u16 length ++ payload] over an abstract
    byte-stream [io], so the same protocol code runs over simulated network
    channels, over compartment file descriptors, or over an attacker's
    captured trace. *)

exception Closed
(** The peer closed mid-message. *)

type io = {
  recv : int -> bytes;  (** exactly n bytes. @raise Closed on EOF *)
  send : bytes -> unit;
}

val io_of_fns : recv:(int -> bytes option) -> send:(bytes -> unit) -> io
(** Adapt read-up-to-n functions ([None] = EOF) into an exact-read [io]. *)

(** Message types of the protocol. *)
type mtype =
  | Client_hello
  | Server_hello
  | Certificate
  | Client_key_exchange
  | Finished
  | App_data
  | Alert

val mtype_to_char : mtype -> char
val mtype_of_char : char -> mtype option

val send_msg : io -> mtype -> bytes -> unit
val recv_msg : io -> mtype * bytes
(** @raise Closed on EOF, [Failure] on garbage. *)

val frame : mtype -> bytes -> bytes
(** The exact bytes [send_msg] would transmit (for transcript hashing and
    for attackers crafting injections). *)

val parse_frames : string -> (mtype * bytes) list
(** Parse a captured byte trace into messages (eavesdropper's view);
    ignores a trailing partial frame. *)
