lib/spec/w_hmmer.ml: Wedge_crypto Wmem
