lib/spec/wmem.ml: Bytes Char Int32 Int64 Wedge_sim
