lib/spec/w_quantum.ml: Wmem
