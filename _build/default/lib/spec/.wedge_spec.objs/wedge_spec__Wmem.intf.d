lib/spec/wmem.mli: Wedge_sim
