lib/spec/w_mcf.ml: Wedge_crypto Wmem
