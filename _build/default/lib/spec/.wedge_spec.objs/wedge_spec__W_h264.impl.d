lib/spec/w_h264.ml: Wedge_crypto Wmem
