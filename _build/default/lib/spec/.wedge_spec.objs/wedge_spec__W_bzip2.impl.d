lib/spec/w_bzip2.ml: Array Wedge_crypto Wmem
