lib/spec/w_gobmk.ml: List Wedge_crypto Wmem
