lib/spec/w_sjeng.ml: Wmem
