lib/spec/workload.mli: Wedge_sim
