lib/spec/workload.ml: List W_bzip2 W_gobmk W_h264 W_hmmer W_mcf W_quantum W_sjeng Wedge_sim
