(** The workload registry for Figure 9: seven SPEC-like kernels with
    deterministic synthetic inputs, runnable under any instrumentation
    mode.  (The figure's remaining two entries, ssh and apache, are the
    real application stand-ins and are driven directly by the benchmark
    harness.) *)

type t = {
  name : string;
  run : instr:Wedge_sim.Instr.t -> scale:int -> int;
      (** Returns a deterministic checksum; raises on self-check failure. *)
  default_scale : int;  (** calibrated so a native run takes ~tens of ms *)
}

val all : t list
(** mcf, gobmk, quantum, hmmer, sjeng, bzip2, h264. *)

val find : string -> t option
