(* gobmk-like kernel: Go board liberty counting — repeated flood fills over
   a 19x19 board with many short function calls, the branchy
   pattern-matching character of 445.gobmk. *)

module Drbg = Wedge_crypto.Drbg

let name = "gobmk"
let dim = 19

let run ~instr ~scale =
  let cells = dim * dim in
  let m = Wmem.create ~instr ((cells * 2) + (cells * 4) + 64) in
  let board = Wmem.alloc m ~name:"board" cells in
  let mark = Wmem.alloc m ~name:"mark" cells in
  let stack = Wmem.alloc m ~name:"stack" (cells * 4) in
  let rng = Drbg.create ~seed:0x60 in
  let acc = ref 0 in
  let liberties pos colour =
    Wmem.scope m "count_liberties" (fun () ->
        for i = 0 to cells - 1 do
          Wmem.set8 m (mark + i) 0
        done;
        let sp = ref 0 in
        let libs = ref 0 in
        let push p =
          Wmem.set32 m (stack + (!sp * 4)) p;
          incr sp
        in
        push pos;
        Wmem.set8 m (mark + pos) 1;
        while !sp > 0 do
          decr sp;
          let p = Wmem.get32 m (stack + (!sp * 4)) in
          let x = p mod dim and y = p / dim in
          List.iter
            (fun (dx, dy) ->
              let nx = x + dx and ny = y + dy in
              if nx >= 0 && nx < dim && ny >= 0 && ny < dim then begin
                let np = (ny * dim) + nx in
                if Wmem.get8 m (mark + np) = 0 then begin
                  Wmem.set8 m (mark + np) 1;
                  let c = Wmem.get8 m (board + np) in
                  if c = 0 then incr libs else if c = colour then push np
                end
              end)
            [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
        done;
        !libs)
  in
  for game = 1 to 4 * scale do
    Wmem.scope m "play_game" (fun () ->
        for i = 0 to cells - 1 do
          Wmem.set8 m (board + i) 0
        done;
        for move = 1 to 160 do
          let pos = Drbg.int_below rng cells in
          let colour = 1 + (move land 1) in
          if Wmem.get8 m (board + pos) = 0 then begin
            Wmem.set8 m (board + pos) colour;
            acc := (!acc + liberties pos colour + game) land 0x3fffffff
          end
        done)
  done;
  !acc
