(* bzip2-like kernel: Burrows–Wheeler transform + move-to-front + run-length
   coding of data blocks, then the full inverse pipeline with a roundtrip
   check — 401.bzip2's sort- and table-heavy behaviour. *)

module Drbg = Wedge_crypto.Drbg

let name = "bzip2"
let block = 2048

let run ~instr ~scale =
  let m = Wmem.create ~instr ((block * 16) + 65536) in
  let input = Wmem.alloc m ~name:"input_block" block in
  let rot = Wmem.alloc m ~name:"rotation_index" (block * 4) in
  let bwt = Wmem.alloc m ~name:"bwt_output" block in
  let mtf = Wmem.alloc m ~name:"mtf_output" block in
  let table = Wmem.alloc m ~name:"mtf_table" 256 in
  let decode = Wmem.alloc m ~name:"decoded" block in
  let counts = Wmem.alloc m ~name:"counts" (256 * 4) in
  let next = Wmem.alloc m ~name:"next_index" (block * 4) in
  let rng = Drbg.create ~seed:0xb21b2 in
  let acc = ref 0 in
  for blk = 1 to scale do
    (* Compressible-ish input: runs + noise. *)
    Wmem.scope m "generate_block" (fun () ->
        let i = ref 0 in
        while !i < block do
          let c = Drbg.int_below rng 64 in
          let run = 1 + Drbg.int_below rng 6 in
          let stop = min block (!i + run) in
          while !i < stop do
            Wmem.set8 m (input + !i) c;
            incr i
          done
        done);
    (* BWT: sort all rotations (index sort with comparison on demand). *)
    Wmem.scope m "bwt_sort" (fun () ->
        let idx = Array.init block (fun i -> i) in
        let cmp a b =
          let rec go k =
            if k = block then 0
            else
              let ca = Wmem.get8 m (input + ((a + k) mod block)) in
              let cb = Wmem.get8 m (input + ((b + k) mod block)) in
              if ca <> cb then compare ca cb else go (k + 1)
          in
          go 0
        in
        Array.sort cmp idx;
        Array.iteri (fun i v -> Wmem.set32 m (rot + (i * 4)) v) idx);
    let primary = ref 0 in
    Wmem.scope m "bwt_emit" (fun () ->
        for i = 0 to block - 1 do
          let r = Wmem.get32 m (rot + (i * 4)) in
          if r = 0 then primary := i;
          Wmem.set8 m (bwt + i) (Wmem.get8 m (input + ((r + block - 1) mod block)))
        done);
    (* Move-to-front + RLE accounting. *)
    Wmem.scope m "mtf" (fun () ->
        for c = 0 to 255 do
          Wmem.set8 m (table + c) c
        done;
        for i = 0 to block - 1 do
          let c = Wmem.get8 m (bwt + i) in
          let rec find j = if Wmem.get8 m (table + j) = c then j else find (j + 1) in
          let pos = find 0 in
          Wmem.set8 m (mtf + i) pos;
          for j = pos downto 1 do
            Wmem.set8 m (table + j) (Wmem.get8 m (table + (j - 1)))
          done;
          Wmem.set8 m (table + 0) c
        done);
    Wmem.scope m "rle_estimate" (fun () ->
        let zeros = ref 0 in
        for i = 0 to block - 1 do
          if Wmem.get8 m (mtf + i) = 0 then incr zeros
        done;
        acc := (!acc + !zeros) land 0x3fffffff);
    (* Inverse MTF. *)
    Wmem.scope m "unmtf" (fun () ->
        for c = 0 to 255 do
          Wmem.set8 m (table + c) c
        done;
        for i = 0 to block - 1 do
          let pos = Wmem.get8 m (mtf + i) in
          let c = Wmem.get8 m (table + pos) in
          Wmem.set8 m (bwt + i) c;
          for j = pos downto 1 do
            Wmem.set8 m (table + j) (Wmem.get8 m (table + (j - 1)))
          done;
          Wmem.set8 m (table + 0) c
        done);
    (* Inverse BWT. *)
    Wmem.scope m "unbwt" (fun () ->
        for c = 0 to 255 do
          Wmem.set32 m (counts + (c * 4)) 0
        done;
        for i = 0 to block - 1 do
          let c = Wmem.get8 m (bwt + i) in
          Wmem.set32 m (counts + (c * 4)) (Wmem.get32 m (counts + (c * 4)) + 1)
        done;
        let totals = Array.make 257 0 in
        for c = 0 to 255 do
          totals.(c + 1) <- totals.(c) + Wmem.get32 m (counts + (c * 4))
        done;
        let seen = Array.make 256 0 in
        for i = 0 to block - 1 do
          let c = Wmem.get8 m (bwt + i) in
          Wmem.set32 m (next + (i * 4)) (totals.(c) + seen.(c));
          seen.(c) <- seen.(c) + 1
        done;
        (* walk: standard inverse-BWT traversal *)
        let p = ref !primary in
        for i = block - 1 downto 0 do
          Wmem.set8 m (decode + i) (Wmem.get8 m (bwt + !p));
          p := Wmem.get32 m (next + (!p * 4))
        done);
    (* Roundtrip self-check. *)
    Wmem.scope m "verify" (fun () ->
        for i = 0 to block - 1 do
          if Wmem.get8 m (decode + i) <> Wmem.get8 m (input + i) then
            failwith "bzip2 kernel: roundtrip mismatch"
        done);
    ignore blk
  done;
  !acc
