(* libquantum-like kernel: a quantum register of 2^n fixed-point
   amplitudes, streamed over by Hadamard and controlled-NOT gate loops —
   462.libquantum's long sequential sweeps over a big amplitude array. *)

let name = "quantum"

let run ~instr ~scale =
  let qubits = 11 in
  let states = 1 lsl qubits in
  let m = Wmem.create ~instr ((states * 16) + 64) in
  (* amplitude = (re, im) pairs of 8-byte fixed point (<< 20) *)
  let amp = Wmem.alloc m ~name:"amplitudes" (states * 16) in
  let one = 1 lsl 20 in
  Wmem.scope m "init_register" (fun () ->
      Wmem.set64 m amp one;
      for s = 1 to states - 1 do
        Wmem.set64 m (amp + (s * 16)) 0;
        Wmem.set64 m (amp + (s * 16) + 8) 0
      done);
  let hadamard target =
    Wmem.scope m "hadamard" (fun () ->
        (* 1/sqrt2 ~ 0.7071 in fixed point *)
        let c = 741455 in
        let bit = 1 lsl target in
        for s = 0 to states - 1 do
          if s land bit = 0 then begin
            let s1 = s lxor bit in
            let a_re = Wmem.get64 m (amp + (s * 16)) in
            let a_im = Wmem.get64 m (amp + (s * 16) + 8) in
            let b_re = Wmem.get64 m (amp + (s1 * 16)) in
            let b_im = Wmem.get64 m (amp + (s1 * 16) + 8) in
            Wmem.set64 m (amp + (s * 16)) ((a_re + b_re) * c asr 20);
            Wmem.set64 m (amp + (s * 16) + 8) ((a_im + b_im) * c asr 20);
            Wmem.set64 m (amp + (s1 * 16)) ((a_re - b_re) * c asr 20);
            Wmem.set64 m (amp + (s1 * 16) + 8) ((a_im - b_im) * c asr 20)
          end
        done)
  in
  let cnot control target =
    Wmem.scope m "cnot" (fun () ->
        let cb = 1 lsl control and tb = 1 lsl target in
        for s = 0 to states - 1 do
          if s land cb <> 0 && s land tb = 0 then begin
            let s1 = s lxor tb in
            let a_re = Wmem.get64 m (amp + (s * 16)) in
            let a_im = Wmem.get64 m (amp + (s * 16) + 8) in
            Wmem.set64 m (amp + (s * 16)) (Wmem.get64 m (amp + (s1 * 16)));
            Wmem.set64 m (amp + (s * 16) + 8) (Wmem.get64 m (amp + (s1 * 16) + 8));
            Wmem.set64 m (amp + (s1 * 16)) a_re;
            Wmem.set64 m (amp + (s1 * 16) + 8) a_im
          end
        done)
  in
  for round = 1 to 6 * scale do
    for q = 0 to qubits - 1 do
      hadamard q
    done;
    for q = 0 to qubits - 2 do
      cnot q (q + 1)
    done;
    ignore round
  done;
  Wmem.scope m "norm" (fun () ->
      let acc = ref 1 in
      for s = 0 to states - 1 do
        let re = Wmem.get64 m (amp + (s * 16)) in
        let im = Wmem.get64 m (amp + (s * 16) + 8) in
        acc := ((!acc * 31) + abs re + abs im) land 0x3fffffff
      done;
      !acc)
