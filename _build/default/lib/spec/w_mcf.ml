(* mcf-like kernel: Bellman–Ford shortest-path relaxation over a random
   sparse graph held in instrumented memory — the pointer-chasing,
   relaxation-heavy character of 429.mcf's network simplex. *)

module Drbg = Wedge_crypto.Drbg

let name = "mcf"

let run ~instr ~scale =
  let nodes = 600 * scale in
  let deg = 4 in
  let edges = nodes * deg in
  let m = Wmem.create ~instr ((edges * 12) + (nodes * 4) + 64) in
  let eh = Wmem.alloc m ~name:"edge_head" (edges * 4) in
  let et = Wmem.alloc m ~name:"edge_tail" (edges * 4) in
  let ew = Wmem.alloc m ~name:"edge_cost" (edges * 4) in
  let dist = Wmem.alloc m ~name:"dist" (nodes * 4) in
  let rng = Drbg.create ~seed:0x3cf in
  Wmem.scope m "build_graph" (fun () ->
      for e = 0 to edges - 1 do
        Wmem.set32 m (eh + (e * 4)) (e / deg);
        Wmem.set32 m (et + (e * 4)) (Drbg.int_below rng nodes);
        Wmem.set32 m (ew + (e * 4)) (1 + Drbg.int_below rng 100)
      done;
      for v = 0 to nodes - 1 do
        Wmem.set32 m (dist + (v * 4)) 0x3fffffff
      done;
      Wmem.set32 m dist 0);
  Wmem.scope m "relax" (fun () ->
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds < 30 do
        changed := false;
        incr rounds;
        for e = 0 to edges - 1 do
          let u = Wmem.get32 m (eh + (e * 4)) in
          let v = Wmem.get32 m (et + (e * 4)) in
          let w = Wmem.get32 m (ew + (e * 4)) in
          let du = Wmem.get32 m (dist + (u * 4)) in
          if du + w < Wmem.get32 m (dist + (v * 4)) then begin
            Wmem.set32 m (dist + (v * 4)) (du + w);
            changed := true
          end
        done
      done);
  Wmem.scope m "checksum" (fun () ->
      let acc = ref 0 in
      for v = 0 to nodes - 1 do
        acc := (!acc + Wmem.get32 m (dist + (v * 4))) land 0x3fffffff
      done;
      !acc)
