(** Instrumented flat memory for the SPEC-like workload kernels.

    Every load and store fires the {!Wedge_sim.Instr} hooks, so the same
    kernel runs natively, under the Pin model, or under full cb-log — the
    three bars of Figure 9.  Regions are carved out by a bump allocator
    that registers named segments for allocation-site attribution. *)

type t

val create : instr:Wedge_sim.Instr.t -> int -> t
(** [create ~instr bytes]: zeroed memory of the given size. *)

val instr : t -> Wedge_sim.Instr.t
val size : t -> int

val alloc : t -> name:string -> int -> int
(** Carve a named region (8-byte aligned); returns its base offset. *)

val get8 : t -> int -> int
val set8 : t -> int -> int -> unit
val get32 : t -> int -> int
val set32 : t -> int -> int -> unit
val get64 : t -> int -> int
val set64 : t -> int -> int -> unit

val scope : t -> string -> (unit -> 'a) -> 'a
(** Function-entry/exit bracket (the kernel's "basic blocks"). *)
