(* hmmer-like kernel: Viterbi dynamic programming of a profile HMM against
   random sequences — 456.hmmer's dense per-cell max/add inner loops. *)

module Drbg = Wedge_crypto.Drbg

let name = "hmmer"

let run ~instr ~scale =
  let states = 64 in
  let seqlen = 180 * scale in
  let alpha = 20 in
  let m = Wmem.create ~instr ((states * alpha * 4) + (states * 4 * 2) + seqlen + (states * 4) + 64) in
  let emit = Wmem.alloc m ~name:"emission_scores" (states * alpha * 4) in
  let trans = Wmem.alloc m ~name:"transition_scores" (states * 4) in
  let seq = Wmem.alloc m ~name:"sequence" seqlen in
  let prev = Wmem.alloc m ~name:"viterbi_prev" (states * 4) in
  let cur = Wmem.alloc m ~name:"viterbi_cur" (states * 4) in
  let rng = Drbg.create ~seed:0x4a3 in
  Wmem.scope m "build_model" (fun () ->
      for i = 0 to (states * alpha) - 1 do
        Wmem.set32 m (emit + (i * 4)) (Drbg.int_below rng 50)
      done;
      for i = 0 to states - 1 do
        Wmem.set32 m (trans + (i * 4)) (Drbg.int_below rng 20);
        Wmem.set32 m (prev + (i * 4)) 0
      done;
      for i = 0 to seqlen - 1 do
        Wmem.set8 m (seq + i) (Drbg.int_below rng alpha)
      done);
  Wmem.scope m "viterbi" (fun () ->
      for pos = 0 to seqlen - 1 do
        let c = Wmem.get8 m (seq + pos) in
        for s = 0 to states - 1 do
          let stay = Wmem.get32 m (prev + (s * 4)) in
          let from_prev =
            if s > 0 then Wmem.get32 m (prev + ((s - 1) * 4)) + Wmem.get32 m (trans + (s * 4))
            else stay
          in
          let best = if from_prev > stay then from_prev else stay in
          Wmem.set32 m (cur + (s * 4)) (best + Wmem.get32 m (emit + (((s * alpha) + c) * 4)))
        done;
        for s = 0 to states - 1 do
          Wmem.set32 m (prev + (s * 4)) (Wmem.get32 m (cur + (s * 4)))
        done
      done);
  Wmem.scope m "score" (fun () ->
      let best = ref 0 in
      for s = 0 to states - 1 do
        let v = Wmem.get32 m (prev + (s * 4)) in
        if v > !best then best := v
      done;
      !best land 0x3fffffff)
