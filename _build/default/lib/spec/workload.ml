type t = {
  name : string;
  run : instr:Wedge_sim.Instr.t -> scale:int -> int;
  default_scale : int;
}

let all =
  [
    { name = W_mcf.name; run = W_mcf.run; default_scale = 2 };
    { name = W_gobmk.name; run = W_gobmk.run; default_scale = 2 };
    { name = W_quantum.name; run = W_quantum.run; default_scale = 1 };
    { name = W_hmmer.name; run = W_hmmer.run; default_scale = 3 };
    { name = W_sjeng.name; run = W_sjeng.run; default_scale = 2 };
    { name = W_bzip2.name; run = W_bzip2.run; default_scale = 2 };
    { name = W_h264.name; run = W_h264.run; default_scale = 1 };
  ]

let find name = List.find_opt (fun w -> w.name = name) all
