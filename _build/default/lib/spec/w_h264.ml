(* h264ref-like kernel: exhaustive motion estimation — sum-of-absolute-
   differences over a search window for every macroblock, 464.h264ref's
   dominant inner loop and the most access-dense kernel in the set. *)

module Drbg = Wedge_crypto.Drbg

let name = "h264"
let w = 96
let h = 64
let mb = 16
let search = 5

let run ~instr ~scale =
  let frame = w * h in
  let m = Wmem.create ~instr ((frame * 2) + 64) in
  let ref_f = Wmem.alloc m ~name:"reference_frame" frame in
  let cur_f = Wmem.alloc m ~name:"current_frame" frame in
  let rng = Drbg.create ~seed:0x264 in
  Wmem.scope m "generate_frames" (fun () ->
      for i = 0 to frame - 1 do
        Wmem.set8 m (ref_f + i) (Drbg.int_below rng 256)
      done;
      (* current = reference shifted by (3,2) + noise *)
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          let sx = min (w - 1) (x + 3) and sy = min (h - 1) (y + 2) in
          let v = Wmem.get8 m (ref_f + (sy * w) + sx) in
          Wmem.set8 m (cur_f + (y * w) + x) ((v + Drbg.int_below rng 5) land 0xff)
        done
      done);
  let sad bx by dx dy =
    Wmem.scope m "sad_16x16" (fun () ->
        let total = ref 0 in
        for y = 0 to mb - 1 do
          for x = 0 to mb - 1 do
            let cy = by + y and cx = bx + x in
            let ry = cy + dy and rx = cx + dx in
            if ry >= 0 && ry < h && rx >= 0 && rx < w then
              total :=
                !total
                + abs (Wmem.get8 m (cur_f + (cy * w) + cx) - Wmem.get8 m (ref_f + (ry * w) + rx))
            else total := !total + 255
          done
        done;
        !total)
  in
  let acc = ref 0 in
  for pass = 1 to scale do
    Wmem.scope m "motion_estimate" (fun () ->
        let by = ref 0 in
        while !by + mb <= h do
          let bx = ref 0 in
          while !bx + mb <= w do
            let best = ref max_int and bestv = ref 0 in
            for dy = -search to search do
              for dx = -search to search do
                let s = sad !bx !by dx dy in
                if s < !best then begin
                  best := s;
                  bestv := ((dy + search) * 32) + dx + search
                end
              done
            done;
            acc := (!acc + !best + !bestv + pass) land 0x3fffffff;
            bx := !bx + mb
          done;
          by := !by + mb
        done)
  done;
  !acc
