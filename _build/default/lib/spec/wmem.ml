module Instr = Wedge_sim.Instr

type t = {
  data : Bytes.t;
  instr : Instr.t;
  fast : bool;  (* instr is null: skip hook dispatch *)
  mutable brk : int;
}

let create ~instr n =
  { data = Bytes.make n '\000'; instr; fast = Instr.is_null instr; brk = 0 }

let instr t = t.instr
let size t = Bytes.length t.data

let alloc t ~name n =
  let base = (t.brk + 7) land lnot 7 in
  if base + n > Bytes.length t.data then invalid_arg "Wmem.alloc: out of memory";
  t.brk <- base + n;
  if not t.fast then t.instr.Instr.on_alloc base n (Instr.Global name);
  base

let get8 t i =
  if not t.fast then t.instr.Instr.on_access i 1 Instr.Read;
  Char.code (Bytes.unsafe_get t.data i)

let set8 t i v =
  if not t.fast then t.instr.Instr.on_access i 1 Instr.Write;
  Bytes.unsafe_set t.data i (Char.unsafe_chr (v land 0xff))

let get32 t i =
  if not t.fast then t.instr.Instr.on_access i 4 Instr.Read;
  Int32.to_int (Bytes.get_int32_le t.data i)

let set32 t i v =
  if not t.fast then t.instr.Instr.on_access i 4 Instr.Write;
  Bytes.set_int32_le t.data i (Int32.of_int v)

let get64 t i =
  if not t.fast then t.instr.Instr.on_access i 8 Instr.Read;
  Int64.to_int (Bytes.get_int64_le t.data i)

let set64 t i v =
  if not t.fast then t.instr.Instr.on_access i 8 Instr.Write;
  Bytes.set_int64_le t.data i (Int64.of_int v)

let scope t name f =
  if t.fast then f () else Instr.scoped t.instr ~name ~file:"spec" ~line:0 f
