(* sjeng-like kernel: alpha-beta minimax with make/unmake moves over a
   synthetic position array — 458.sjeng's recursive search with hash-based
   evaluation. *)

let name = "sjeng"
let cells = 64

let run ~instr ~scale =
  let m = Wmem.create ~instr (cells + 64) in
  let board = Wmem.alloc m ~name:"board" cells in
  Wmem.scope m "setup" (fun () ->
      for i = 0 to cells - 1 do
        Wmem.set8 m (board + i) ((i * 7) land 0xf)
      done);
  let evaluate () =
    Wmem.scope m "evaluate" (fun () ->
        let h = ref 17 in
        for i = 0 to cells - 1 do
          h := ((!h * 31) + Wmem.get8 m (board + i)) land 0xffffff
        done;
        (!h mod 2001) - 1000)
  in
  let rec search depth alpha beta ply =
    if depth = 0 then evaluate ()
    else
      Wmem.scope m "search" (fun () ->
          let alpha = ref alpha in
          let moves = 5 in
          (try
             for mv = 0 to moves - 1 do
               let sq = ((ply * 13) + (mv * 17)) mod cells in
               let old = Wmem.get8 m (board + sq) in
               (* make *)
               Wmem.set8 m (board + sq) ((old + mv + 1) land 0xf);
               let score = -search (depth - 1) (-beta) (- !alpha) (ply + 1) in
               (* unmake *)
               Wmem.set8 m (board + sq) old;
               if score > !alpha then alpha := score;
               if !alpha >= beta then raise Exit
             done
           with Exit -> ());
          !alpha)
  in
  let acc = ref 0 in
  for root = 1 to scale do
    acc := (!acc + search 7 (-10000) 10000 root) land 0x3fffffff
  done;
  !acc
