module Wire = Wedge_tls.Wire
module Record = Wedge_tls.Record
module Sha256 = Wedge_crypto.Sha256

type msg =
  | Version of string
  | Kexinit of bytes
  | Kexreply of {
      host_rsa : string;
      host_dsa : string;
      server_nonce : bytes;
      signature : string;
    }
  | Kexsecret of bytes
  | Auth_password of { user : string; password : string }
  | Auth_pubkey of { user : string; pub : string; proof : string }
  | Skey_start of { user : string }
  | Skey_challenge of { seq : int; seed : string }
  | Skey_response of { response : string }
  | Auth_result of bool
  | Exec of string
  | Data of bytes
  | Eof
  | Disconnect

let kex_binding ~client_nonce ~server_nonce ~host_rsa ~host_dsa =
  let b = Buffer.create 128 in
  Buffer.add_bytes b client_nonce;
  Buffer.add_bytes b server_nonce;
  Buffer.add_string b host_rsa;
  Buffer.add_string b host_dsa;
  Sha256.digest (Buffer.to_bytes b)

let auth_proof_binding ~session_fp ~user =
  Sha256.digest_string ("wssh-auth:" ^ session_fp ^ ":" ^ user)

let expand secret cn sn label =
  let ctx = Sha256.init () in
  Sha256.update_string ctx label;
  Sha256.update ctx secret;
  Sha256.update ctx cn;
  Sha256.update ctx sn;
  Sha256.final ctx

let derive_keys ~secret ~client_nonce ~server_nonce ~side =
  let master = expand secret client_nonce server_nonce "wssh-master" in
  Record.derive ~master ~client_random:client_nonce ~server_random:server_nonce ~side

let session_fingerprint ~secret ~client_nonce ~server_nonce =
  Sha256.hex (expand secret client_nonce server_nonce "wssh-fp")

(* ---------------- marshalling ---------------- *)

let put_lv b s =
  let n = String.length s in
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_string b s

let get_lv s pos =
  let n = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1] in
  (String.sub s (pos + 2) n, pos + 2 + n)

let marshal msg =
  let b = Buffer.create 64 in
  (match msg with
  | Version v ->
      Buffer.add_char b 'V';
      put_lv b v
  | Kexinit nonce ->
      Buffer.add_char b 'I';
      put_lv b (Bytes.to_string nonce)
  | Kexreply { host_rsa; host_dsa; server_nonce; signature } ->
      Buffer.add_char b 'R';
      put_lv b host_rsa;
      put_lv b host_dsa;
      put_lv b (Bytes.to_string server_nonce);
      put_lv b signature
  | Kexsecret ct ->
      Buffer.add_char b 'S';
      put_lv b (Bytes.to_string ct)
  | Auth_password { user; password } ->
      Buffer.add_char b 'p';
      put_lv b user;
      put_lv b password
  | Auth_pubkey { user; pub; proof } ->
      Buffer.add_char b 'k';
      put_lv b user;
      put_lv b pub;
      put_lv b proof
  | Skey_start { user } ->
      Buffer.add_char b 's';
      put_lv b user
  | Skey_challenge { seq; seed } ->
      Buffer.add_char b 'c';
      put_lv b (string_of_int seq);
      put_lv b seed
  | Skey_response { response } ->
      Buffer.add_char b 'r';
      put_lv b response
  | Auth_result ok ->
      Buffer.add_char b 'a';
      Buffer.add_char b (if ok then '\001' else '\000')
  | Exec cmd ->
      Buffer.add_char b 'e';
      put_lv b cmd
  | Data d ->
      Buffer.add_char b 'd';
      put_lv b (Bytes.to_string d)
  | Eof -> Buffer.add_char b 'f'
  | Disconnect -> Buffer.add_char b 'q');
  Buffer.to_bytes b

let unmarshal payload =
  let s = Bytes.to_string payload in
  try
    match s.[0] with
    | 'V' -> Some (Version (fst (get_lv s 1)))
    | 'I' -> Some (Kexinit (Bytes.of_string (fst (get_lv s 1))))
    | 'R' ->
        let host_rsa, p = get_lv s 1 in
        let host_dsa, p = get_lv s p in
        let sn, p = get_lv s p in
        let signature, _ = get_lv s p in
        Some (Kexreply { host_rsa; host_dsa; server_nonce = Bytes.of_string sn; signature })
    | 'S' -> Some (Kexsecret (Bytes.of_string (fst (get_lv s 1))))
    | 'p' ->
        let user, p = get_lv s 1 in
        let password, _ = get_lv s p in
        Some (Auth_password { user; password })
    | 'k' ->
        let user, p = get_lv s 1 in
        let pub, p = get_lv s p in
        let proof, _ = get_lv s p in
        Some (Auth_pubkey { user; pub; proof })
    | 's' -> Some (Skey_start { user = fst (get_lv s 1) })
    | 'c' ->
        let seq, p = get_lv s 1 in
        let seed, _ = get_lv s p in
        Option.map (fun seq -> Skey_challenge { seq; seed }) (int_of_string_opt seq)
    | 'r' -> Some (Skey_response { response = fst (get_lv s 1) })
    | 'a' -> Some (Auth_result (s.[1] = '\001'))
    | 'e' -> Some (Exec (fst (get_lv s 1)))
    | 'd' -> Some (Data (Bytes.of_string (fst (get_lv s 1))))
    | 'f' -> Some Eof
    | 'q' -> Some Disconnect
    | _ -> None
  with Invalid_argument _ -> None

(* Plain messages reuse the Wire frame with App_data as a neutral carrier;
   sealed messages are records inside Finished-typed frames so the two
   layers cannot be confused. *)
let send_plain io msg = Wire.send_msg io Wire.App_data (marshal msg)

let recv_plain io =
  match Wire.recv_msg io with
  | Wire.App_data, payload -> (
      match unmarshal payload with
      | Some m -> m
      | None -> failwith "wssh: bad message")
  | _ -> failwith "wssh: unexpected frame"

let send_sealed io keys msg = Wire.send_msg io Wire.Finished (Record.seal keys (marshal msg))

let recv_sealed io keys =
  match Wire.recv_msg io with
  | Wire.Finished, record -> (
      match Record.open_ keys record with
      | Some payload -> (
          match unmarshal payload with Some m -> Ok m | None -> Error `Mac_fail)
      | None -> Error `Mac_fail)
  | _ -> Error `Mac_fail
  | exception Wire.Closed -> Error `Eof
