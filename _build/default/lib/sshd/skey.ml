module Sha256 = Wedge_crypto.Sha256

let hash_hex s = Sha256.hex (Sha256.digest_string s)

let chain ~passphrase ~seed ~count =
  if count < 1 then invalid_arg "Skey.chain: count < 1";
  let rec go h n = if n = 0 then h else go (hash_hex h) (n - 1) in
  go (hash_hex (passphrase ^ seed)) (count - 1)

type entry = {
  user : string;
  seq : int;
  seed : string;
  stored : string;
}

let entry_to_line e = Printf.sprintf "%s:%d:%s:%s" e.user e.seq e.seed e.stored

let entry_of_line line =
  match String.split_on_char ':' line with
  | [ user; seq; seed; stored ] -> (
      match int_of_string_opt seq with
      | Some seq -> Some { user; seq; seed; stored }
      | None -> None)
  | _ -> None

let challenge e = (e.seq - 1, e.seed)
let respond ~passphrase ~seed ~seq = chain ~passphrase ~seed ~count:seq
let exhausted e = e.seq <= 1

let verify e ~response =
  if exhausted e then None
  else if String.equal (hash_hex response) e.stored then
    Some { e with seq = e.seq - 1; stored = response }
  else None
