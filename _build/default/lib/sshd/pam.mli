(** A PAM-like authentication library, faithfully including the historical
    bug of §5.2 / [Kuhn 2003]: during password verification it copies the
    cleartext password into malloc'd scratch storage and frees it {e
    without scrubbing}.

    Where that scratch lives decides who can read the remnant:
    - called from a monolithic or privilege-separated (fork-based) server,
      the scratch sits in the parent's heap, and every subsequently forked
      slave inherits it;
    - called from inside a Wedge callgate, the scratch is in the callgate
      sthread's private untagged heap, which no other compartment can even
      name. *)

val authenticate :
  Wedge_core.Wedge.ctx -> shadow_line:string -> user:string -> password:string -> bool
(** Verify [password] against a shadow entry ([user:uid:salt:sha256hex]).
    Leaves the password in freed heap scratch (the bug). *)

val scratch_offset : int
(** Byte offset of the password copy within the scratch allocation (the
    allocator's free-list links clobber the first bytes, as with dlmalloc;
    the copy survives beyond them). *)

val uid_of_shadow_line : string -> int option
