(** SSH client for tests, examples and benchmarks.  Verifies the server's
    host identity against pinned keys (DSA signature over the key-exchange
    binding) before deriving transport keys. *)

type conn
(** An established (key-exchanged, not yet authenticated) session. *)

type auth =
  | Password of string
  | Pubkey of Wedge_crypto.Dsa.priv
  | Skey of string  (** the S/Key passphrase *)

val start :
  rng:Wedge_crypto.Drbg.t ->
  pinned_rsa:Wedge_crypto.Rsa.pub ->
  pinned_dsa:Wedge_crypto.Dsa.pub ->
  Wedge_net.Chan.ep ->
  (conn, string) result
(** Version exchange + key exchange + host verification. *)

val authenticate : conn -> user:string -> auth -> bool
val skey_challenge_for : conn -> user:string -> (int * string) option
(** Probe: request an S/Key challenge for a user (the username-oracle
    experiment, §5.2). *)

val skey_answer : conn -> response:string -> bool
val exec : conn -> string -> string option
(** Run a command, return the first Data reply. *)

val scp_upload : conn -> path:string -> data:string -> bool
val close : conn -> unit

val login :
  rng:Wedge_crypto.Drbg.t ->
  pinned_rsa:Wedge_crypto.Rsa.pub ->
  pinned_dsa:Wedge_crypto.Dsa.pub ->
  user:string ->
  auth ->
  Wedge_net.Chan.ep ->
  (conn, string) result
(** [start] + [authenticate]; [Error] also covers auth rejection. *)
