(** Shared environment for the OpenSSH stand-ins: user accounts (password,
    DSA user key, S/Key chain), host keys in tagged memory, configuration
    and public data readable by unprivileged workers. *)

type user = {
  name : string;
  uid : int;
  password : string;
  skey_passphrase : string;
  skey_count : int;
  key_seed : int;  (** deterministic seed for the user's DSA key pair *)
}

val default_users : user list

type t = {
  app : Wedge_core.Wedge.app;
  main : Wedge_core.Wedge.ctx;
  host_rsa : Wedge_crypto.Rsa.priv;  (** outside the simulation, for client pinning *)
  host_dsa : Wedge_crypto.Dsa.priv;
  hostkey_tag : Wedge_mem.Tag.t;  (** private keys: callgates only *)
  rsa_addr : int;
  dsa_addr : int;
  public_tag : Wedge_mem.Tag.t;  (** host public keys + config: worker-readable *)
  pub_rsa_addr : int;
  pub_dsa_addr : int;
  config_addr : int;
  rng : Wedge_crypto.Drbg.t;
  users : user list;
}

val install :
  ?image_pages:int -> ?users:user list -> ?seed:int -> Wedge_kernel.Kernel.t -> t
(** Build the VFS world (shadow, authorized_keys, S/Key db, upload dir,
    empty chroot), boot the app, place host keys in tagged memory. *)

val sshd_image_pages : int
(** OpenSSH's address-space size (much smaller than Apache's). *)

val user_key : user -> Wedge_crypto.Dsa.priv
(** The user's DSA key pair (derived from [key_seed]). *)

val shadow_path : string
val skey_path : string

val read_host_rsa : Wedge_core.Wedge.ctx -> t -> Wedge_crypto.Rsa.priv
val read_host_dsa : Wedge_core.Wedge.ctx -> t -> Wedge_crypto.Dsa.priv
(** Deserialise host private keys from tagged memory (requires read
    permission on [hostkey_tag]). *)

val lookup_shadow : string -> user:string -> string option
(** Find a user's line in shadow-file contents. *)

val find_user : t -> string -> user option
