module Chan = Wedge_net.Chan
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module Wire = Wedge_tls.Wire
module P = Ssh_proto

type conn = {
  io : Wire.io;
  ep : Chan.ep;
  keys : Wedge_tls.Record.keys;
  fp : string;
  rng : Drbg.t;
}

type auth =
  | Password of string
  | Pubkey of Dsa.priv
  | Skey of string

let io_of_ep ep =
  Wire.io_of_fns
    ~recv:(fun n ->
      let b = Chan.read ep n in
      if Bytes.length b = 0 then None else Some b)
    ~send:(fun b -> Chan.write ep b)

let start ~rng ~pinned_rsa ~pinned_dsa ep =
  let io = io_of_ep ep in
  try
    (match P.recv_plain io with P.Version _ -> () | _ -> failwith "expected version");
    P.send_plain io (P.Version "WSSH-1.0-client");
    let client_nonce = Drbg.bytes rng 32 in
    P.send_plain io (P.Kexinit client_nonce);
    match P.recv_plain io with
    | P.Kexreply { host_rsa; host_dsa; server_nonce; signature } ->
        if host_rsa <> Rsa.pub_to_string pinned_rsa then Error "unexpected RSA host key (MITM?)"
        else if host_dsa <> Dsa.pub_to_string pinned_dsa then
          Error "unexpected DSA host key (MITM?)"
        else begin
          let binding = P.kex_binding ~client_nonce ~server_nonce ~host_rsa ~host_dsa in
          match Dsa.signature_of_string signature with
          | None -> Error "garbled host signature"
          | Some s ->
              if not (Dsa.verify pinned_dsa binding ~signature:s) then
                Error "host signature verification failed"
              else begin
                let secret = Drbg.bytes rng 32 in
                let ct = Rsa.encrypt rng pinned_rsa secret in
                P.send_plain io (P.Kexsecret ct);
                let keys = P.derive_keys ~secret ~client_nonce ~server_nonce ~side:`Client in
                let fp = P.session_fingerprint ~secret ~client_nonce ~server_nonce in
                Ok { io; ep; keys; fp; rng }
              end
        end
    | _ -> Error "expected kexreply"
  with
  | Wire.Closed -> Error "connection closed"
  | Failure m -> Error m

let rpc conn msg =
  P.send_sealed conn.io conn.keys msg;
  P.recv_sealed conn.io conn.keys

let auth_result = function Ok (P.Auth_result ok) -> ok | _ -> false

let skey_challenge_for conn ~user =
  match rpc conn (P.Skey_start { user }) with
  | Ok (P.Skey_challenge { seq; seed }) -> Some (seq, seed)
  | _ -> None

let skey_answer conn ~response = auth_result (rpc conn (P.Skey_response { response }))

let authenticate conn ~user auth =
  match auth with
  | Password password -> auth_result (rpc conn (P.Auth_password { user; password }))
  | Pubkey key ->
      let binding = P.auth_proof_binding ~session_fp:conn.fp ~user in
      let signature = Dsa.sign conn.rng key binding in
      auth_result
        (rpc conn
           (P.Auth_pubkey
              {
                user;
                pub = Dsa.pub_to_string key.Dsa.pub;
                proof = Dsa.signature_to_string signature;
              }))
  | Skey passphrase -> (
      match skey_challenge_for conn ~user with
      | None -> false
      | Some (seq, seed) ->
          skey_answer conn ~response:(Skey.respond ~passphrase ~seed ~seq))

let exec conn cmd =
  match rpc conn (P.Exec cmd) with
  | Ok (P.Data d) -> Some (Bytes.to_string d)
  | _ -> None

let scp_upload conn ~path ~data =
  match exec conn (Printf.sprintf "scp %s %d" path (String.length data)) with
  | Some "ready" -> (
      let chunk = 32768 in
      let n = String.length data in
      let rec push off =
        if off < n then begin
          let len = min chunk (n - off) in
          P.send_sealed conn.io conn.keys (P.Data (Bytes.of_string (String.sub data off len)));
          push (off + len)
        end
      in
      push 0;
      match rpc conn P.Eof with Ok (P.Data d) -> Bytes.to_string d = "saved" | _ -> false)
  | _ -> false

let close conn =
  (try P.send_sealed conn.io conn.keys P.Disconnect with _ -> ());
  Chan.close conn.ep

let login ~rng ~pinned_rsa ~pinned_dsa ~user auth ep =
  match start ~rng ~pinned_rsa ~pinned_dsa ep with
  | Error e -> Error e
  | Ok conn -> if authenticate conn ~user auth then Ok conn else Error "authentication failed"
