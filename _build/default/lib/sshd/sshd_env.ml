module W = Wedge_core.Wedge
module Kernel = Wedge_kernel.Kernel
module Vfs = Wedge_kernel.Vfs
module Tag = Wedge_mem.Tag
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module Drbg = Wedge_crypto.Drbg
module Sha256 = Wedge_crypto.Sha256

type user = {
  name : string;
  uid : int;
  password : string;
  skey_passphrase : string;
  skey_count : int;
  key_seed : int;
}

let default_users =
  [
    {
      name = "alice";
      uid = 1000;
      password = "wonderland";
      skey_passphrase = "rabbit hole";
      skey_count = 50;
      key_seed = 0xA11CE;
    };
    {
      name = "bob";
      uid = 1001;
      password = "builder";
      skey_passphrase = "yes we can";
      skey_count = 20;
      key_seed = 0xB0B;
    };
  ]

type t = {
  app : W.app;
  main : W.ctx;
  host_rsa : Rsa.priv;
  host_dsa : Dsa.priv;
  hostkey_tag : Tag.t;
  rsa_addr : int;
  dsa_addr : int;
  public_tag : Tag.t;
  pub_rsa_addr : int;
  pub_dsa_addr : int;
  config_addr : int;
  rng : Drbg.t;
  users : user list;
}

(* OpenSSH 3.1 is far smaller than Apache+OpenSSL-with-modules. *)
let sshd_image_pages = 900

let shadow_path = "/etc/shadow"
let skey_path = "/etc/skey"

let user_keys : (int, Dsa.priv) Hashtbl.t = Hashtbl.create 8

let user_key u =
  match Hashtbl.find_opt user_keys u.key_seed with
  | Some k -> k
  | None ->
      let k = Dsa.keygen (Drbg.create ~seed:u.key_seed) (Dsa.demo_params ()) in
      Hashtbl.add user_keys u.key_seed k;
      k

let config_text =
  "Protocol wssh-1.0\nPermitRootLogin no\nPasswordAuthentication yes\n\
   PubkeyAuthentication yes\nSkeyAuthentication yes\nPermitEmptyPasswords no\n"

let install ?(image_pages = sshd_image_pages) ?(users = default_users) ?(seed = 0x55DD)
    kernel =
  let vfs = kernel.Kernel.vfs in
  Vfs.mkdir_p vfs "/var/empty";
  Vfs.mkdir_p vfs ~mode:0o777 "/tmp";
  (* shadow db *)
  let shadow_lines =
    List.map
      (fun u ->
        let salt = "ss" ^ string_of_int u.uid in
        Printf.sprintf "%s:%d:%s:%s" u.name u.uid salt
          (Sha256.hex (Sha256.digest_string (salt ^ u.password))))
      users
  in
  Vfs.install vfs ~uid:0 ~mode:0o600 shadow_path (String.concat "\n" shadow_lines);
  (* per-user home with authorized_keys *)
  List.iter
    (fun u ->
      Vfs.mkdir_p vfs ~uid:u.uid ~mode:0o700 ("/home/" ^ u.name);
      Vfs.mkdir_p vfs ~uid:u.uid ~mode:0o700 ("/home/" ^ u.name ^ "/.ssh");
      Vfs.install vfs ~uid:u.uid ~mode:0o600
        ("/home/" ^ u.name ^ "/.ssh/authorized_keys")
        (Dsa.pub_to_string (user_key u).Dsa.pub ^ "\n"))
    users;
  (* S/Key db *)
  let skey_lines =
    List.map
      (fun u ->
        let seed_str = "sk" ^ string_of_int u.uid in
        Skey.entry_to_line
          {
            Skey.user = u.name;
            seq = u.skey_count;
            seed = seed_str;
            stored = Skey.chain ~passphrase:u.skey_passphrase ~seed:seed_str ~count:u.skey_count;
          })
      users
  in
  Vfs.install vfs ~uid:0 ~mode:0o600 skey_path (String.concat "\n" skey_lines);
  Vfs.install vfs ~mode:0o644 "/etc/sshd_config" config_text;
  let app = W.create_app ~image_pages kernel in
  let main = W.main_ctx app in
  W.boot app;
  let rng = Drbg.create ~seed in
  let host_rsa = Rsa.demo_key () in
  let host_dsa = Dsa.keygen (Drbg.create ~seed:0x4057) (Dsa.demo_params ()) in
  let hostkey_tag = W.tag_new ~name:"sshd.hostkeys" ~pages:1 main in
  let put tag s =
    let a = W.smalloc main (String.length s + 8) tag in
    W.write_lv main a s;
    a
  in
  let rsa_addr = put hostkey_tag (Rsa.priv_to_string host_rsa) in
  let dsa_addr = put hostkey_tag (Dsa.priv_to_string host_dsa) in
  let public_tag = W.tag_new ~name:"sshd.public" ~pages:2 main in
  let pub_rsa_addr = put public_tag (Rsa.pub_to_string host_rsa.Rsa.pub) in
  let pub_dsa_addr = put public_tag (Dsa.pub_to_string host_dsa.Dsa.pub) in
  let config_addr = put public_tag config_text in
  {
    app;
    main;
    host_rsa;
    host_dsa;
    hostkey_tag;
    rsa_addr;
    dsa_addr;
    public_tag;
    pub_rsa_addr;
    pub_dsa_addr;
    config_addr;
    rng;
    users;
  }

let read_host_rsa ctx t =
  match Rsa.priv_of_string (W.read_lv ctx t.rsa_addr) with
  | Some k -> k
  | None -> failwith "sshd: corrupt RSA host key block"

let read_host_dsa ctx t =
  match Dsa.priv_of_string (W.read_lv ctx t.dsa_addr) with
  | Some k -> k
  | None -> failwith "sshd: corrupt DSA host key block"

let lookup_shadow contents ~user =
  String.split_on_char '\n' contents
  |> List.find_opt (fun line ->
         match String.index_opt line ':' with
         | Some i -> String.sub line 0 i = user
         | None -> false)

let find_user t name = List.find_opt (fun u -> u.name = name) t.users
