(** The simplified SSH protocol ("wssh") spoken by the OpenSSH stand-ins.

    {v
    C -> S  Version
    S -> C  Version
    C -> S  Kexinit(client_nonce)
    S -> C  Kexreply(rsa host key, dsa host key, server_nonce,
                     DSA signature over H(nonces ++ host keys))
    C -> S  Kexsecret(RSA_enc(host rsa key, secret))
    [transport now sealed with record keys derived from secret + nonces]
    C -> S  one Auth_* exchange (password / pubkey / skey)
    S -> C  Auth_result
    C -> S  Exec(command); Data...; Eof
    v}

    The DSA signature is what the dsa_sign callgate produces in §5.2 —
    signing only the hash the gate computes itself, never raw caller
    bytes. *)

type msg =
  | Version of string
  | Kexinit of bytes
  | Kexreply of {
      host_rsa : string;
      host_dsa : string;
      server_nonce : bytes;
      signature : string;  (** hex pair r:s *)
    }
  | Kexsecret of bytes
  | Auth_password of { user : string; password : string }
  | Auth_pubkey of { user : string; pub : string; proof : string }
  | Skey_start of { user : string }
  | Skey_challenge of { seq : int; seed : string }
  | Skey_response of { response : string }
  | Auth_result of bool
  | Exec of string
  | Data of bytes
  | Eof
  | Disconnect

val kex_binding : client_nonce:bytes -> server_nonce:bytes -> host_rsa:string -> host_dsa:string -> bytes
(** The exact bytes the DSA host signature covers. *)

val auth_proof_binding : session_fp:string -> user:string -> bytes
(** What a public-key authentication proof signs: bound to this session's
    key fingerprint so proofs cannot be replayed across sessions. *)

val derive_keys : secret:bytes -> client_nonce:bytes -> server_nonce:bytes -> side:[ `Client | `Server ] -> Wedge_tls.Record.keys

val session_fingerprint : secret:bytes -> client_nonce:bytes -> server_nonce:bytes -> string

(** {2 Wire encoding} *)

val send_plain : Wedge_tls.Wire.io -> msg -> unit
val recv_plain : Wedge_tls.Wire.io -> msg
(** @raise Wedge_tls.Wire.Closed / [Failure] on EOF or garbage. *)

val send_sealed : Wedge_tls.Wire.io -> Wedge_tls.Record.keys -> msg -> unit
val recv_sealed : Wedge_tls.Wire.io -> Wedge_tls.Record.keys -> (msg, [ `Mac_fail | `Eof ]) result

val marshal : msg -> bytes
val unmarshal : bytes -> msg option
