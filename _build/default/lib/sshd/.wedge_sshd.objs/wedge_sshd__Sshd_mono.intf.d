lib/sshd/sshd_mono.mli: Sshd_env Sshd_session Wedge_core Wedge_net
