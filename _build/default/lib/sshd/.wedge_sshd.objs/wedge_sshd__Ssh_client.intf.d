lib/sshd/ssh_client.mli: Wedge_crypto Wedge_net
