lib/sshd/sshd_env.mli: Wedge_core Wedge_crypto Wedge_kernel Wedge_mem
