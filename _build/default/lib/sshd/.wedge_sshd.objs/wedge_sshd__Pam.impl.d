lib/sshd/pam.ml: String Wedge_core Wedge_crypto
