lib/sshd/ssh_proto.ml: Buffer Bytes Char Option String Wedge_crypto Wedge_tls
