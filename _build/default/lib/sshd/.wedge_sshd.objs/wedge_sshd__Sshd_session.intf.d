lib/sshd/sshd_session.mli: Wedge_core Wedge_crypto Wedge_tls
