lib/sshd/sshd_privsep.mli: Sshd_env Wedge_core Wedge_net
