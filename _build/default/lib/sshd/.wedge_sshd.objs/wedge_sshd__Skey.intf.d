lib/sshd/skey.mli:
