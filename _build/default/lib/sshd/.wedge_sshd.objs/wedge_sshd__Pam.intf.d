lib/sshd/pam.mli: Wedge_core
