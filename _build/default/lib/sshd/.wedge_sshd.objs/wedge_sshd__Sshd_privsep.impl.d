lib/sshd/sshd_privsep.ml: Bytes Option Ssh_proto Sshd_env Sshd_mono Sshd_session Wedge_core Wedge_crypto Wedge_kernel Wedge_net Wedge_sim Wedge_tls
