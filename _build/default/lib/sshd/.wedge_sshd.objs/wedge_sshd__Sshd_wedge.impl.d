lib/sshd/sshd_wedge.ml: Bytes Char List Pam Skey Ssh_proto Sshd_env Sshd_session String Wedge_core Wedge_crypto Wedge_kernel Wedge_mem Wedge_net Wedge_sim Wedge_tls
