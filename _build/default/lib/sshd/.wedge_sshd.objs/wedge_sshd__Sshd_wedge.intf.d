lib/sshd/sshd_wedge.mli: Sshd_env Wedge_core Wedge_kernel Wedge_mem Wedge_net
