lib/sshd/sshd_env.ml: Hashtbl List Printf Skey String Wedge_core Wedge_crypto Wedge_kernel Wedge_mem
