lib/sshd/ssh_client.ml: Bytes Printf Skey Ssh_proto String Wedge_crypto Wedge_net Wedge_tls
