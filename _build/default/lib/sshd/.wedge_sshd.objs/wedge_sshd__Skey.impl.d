lib/sshd/skey.ml: Printf String Wedge_crypto
