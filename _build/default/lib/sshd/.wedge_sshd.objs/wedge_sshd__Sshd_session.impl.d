lib/sshd/sshd_session.ml: Buffer Bytes Printf Result Ssh_proto String Wedge_core Wedge_crypto Wedge_kernel Wedge_sim Wedge_tls
