lib/sshd/ssh_proto.mli: Wedge_tls
