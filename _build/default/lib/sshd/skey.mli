(** S/Key one-time passwords (RFC 1760 scheme over SHA-256): the server
    stores [H^n(passphrase ++ seed)]; a login reveals [H^(n-1)], which the
    server verifies by hashing once and then stores for next time.

    One of OpenSSH's authentication methods behind a callgate in §5.2, and
    the subject of the S/Key information-leak lesson: a server must issue
    challenges even for unknown users or it becomes a username oracle. *)

val hash_hex : string -> string
(** One chain step (hex in, hex out — initial step takes raw input). *)

val chain : passphrase:string -> seed:string -> count:int -> string
(** [H^count(passphrase ++ seed)] in hex; [count >= 1]. *)

type entry = {
  user : string;
  seq : int;       (** next response must be H^(seq-1) *)
  seed : string;
  stored : string;  (** hex of H^seq *)
}

val entry_to_line : entry -> string
val entry_of_line : string -> entry option

val challenge : entry -> int * string
(** (seq-1, seed) to present to the client. *)

val respond : passphrase:string -> seed:string -> seq:int -> string
(** The client's response to challenge (seq, seed). *)

val verify : entry -> response:string -> entry option
(** [Some updated] on success (sequence decremented, stored replaced). *)

val exhausted : entry -> bool
(** No logins left (seq <= 1). *)
