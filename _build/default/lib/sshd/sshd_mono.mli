(** Monolithic sshd: key exchange, host keys, authentication and session
    handling all in one root process.  An exploit in the protocol parser
    yields the host private keys, the shadow file, and root's filesystem. *)

val serve_connection :
  ?exploit:(Wedge_core.Wedge.ctx -> unit) ->
  Sshd_env.t ->
  Wedge_net.Chan.ep ->
  unit

val ops : Sshd_env.t -> Wedge_core.Wedge.ctx -> Sshd_session.priv_ops
(** The in-process privileged operations, reused by the privilege-separated
    baseline's monitor. *)
