module W = Wedge_core.Wedge
module Sha256 = Wedge_crypto.Sha256

(* Free-list links overwrite the first 16 bytes of a freed chunk's user
   area; the password copy sits past them, so it survives the free. *)
let scratch_offset = 16

let uid_of_shadow_line line =
  match String.split_on_char ':' line with
  | _ :: uid :: _ -> int_of_string_opt uid
  | _ -> None

let authenticate ctx ~shadow_line ~user ~password =
  (* The bug: working copy of the secret in malloc'd scratch... *)
  let scratch = W.malloc ctx (scratch_offset + 128) in
  W.write_string ctx (scratch + scratch_offset) password;
  let ok =
    match String.split_on_char ':' shadow_line with
    | [ name; _uid; salt; hash ] when name = user ->
        let pw = W.read_string ctx (scratch + scratch_offset) (String.length password) in
        String.equal (Sha256.hex (Sha256.digest_string (salt ^ pw))) hash
    | _ -> false
  in
  (* ...freed without scrubbing. *)
  W.free ctx scratch;
  ok
