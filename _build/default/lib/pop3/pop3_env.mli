(** Test/demo environment for the POP3 servers: user accounts with salted
    password hashes in /etc/pop3.passwd, and per-user maildirs under
    /var/mail. *)

type user = {
  name : string;
  uid : int;
  password : string;
  mails : string list;
}

val default_users : user list
(** alice and bob, with distinct mailboxes. *)

val install : Wedge_kernel.Kernel.t -> user list -> unit
(** Populate the VFS (passwd file readable only by root; mail owned by the
    recipient). *)

val passwd_path : string
val maildir : string -> string
(** Mail directory for a user name. *)

val hash_password : salt:string -> string -> string
(** Hex SHA-256 of salt ++ password — the stored verifier. *)

val check_password : passwd_line:string -> user:string -> password:string -> int option
(** Verify against one passwd line; [Some uid] on success. *)

val lookup_line : passwd_file:string -> user:string -> string option
