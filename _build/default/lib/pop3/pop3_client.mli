(** A POP3 client for tests, examples and benchmarks (the "remote user":
    plain OCaml, no compartments). *)

type t

val connect : Wedge_net.Chan.ep -> t
(** Consumes the greeting. *)

val login : t -> user:string -> password:string -> bool
val stat : t -> (int * int) option
val list_mails : t -> (int * int) list option
val retr : t -> int -> string option
val dele : t -> int -> bool
val quit : t -> unit
val xploit : t -> unit
(** Send the exploit trigger (the server replies -ERR either way). *)
