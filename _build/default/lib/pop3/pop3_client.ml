module Chan = Wedge_net.Chan
module Lineio = Wedge_net.Lineio

type t = { io : Lineio.t }

let read_status t =
  match Lineio.read_line t.io with
  | Some line when String.length line >= 3 && String.sub line 0 3 = "+OK" ->
      Some (String.sub line 4 (max 0 (String.length line - 4)))
  | Some _ -> None
  | None -> None

let connect ep =
  let t = { io = Lineio.of_chan ep } in
  ignore (read_status t);
  t

let cmd t line =
  Lineio.write_line t.io line;
  read_status t

let login t ~user ~password =
  match cmd t ("USER " ^ user) with
  | Some _ -> cmd t ("PASS " ^ password) <> None
  | None -> false

let stat t =
  match cmd t "STAT" with
  | Some rest -> (
      match String.split_on_char ' ' (String.trim rest) with
      | n :: total :: _ -> (
          match (int_of_string_opt n, int_of_string_opt total) with
          | Some n, Some total -> Some (n, total)
          | _ -> None)
      | _ -> None)
  | None -> None

let list_mails t =
  match cmd t "LIST" with
  | None -> None
  | Some _ ->
      let rec collect acc =
        match Lineio.read_line t.io with
        | Some "." | None -> Some (List.rev acc)
        | Some line -> (
            match String.split_on_char ' ' line with
            | [ a; b ] -> (
                match (int_of_string_opt a, int_of_string_opt b) with
                | Some a, Some b -> collect ((a, b) :: acc)
                | _ -> collect acc)
            | _ -> collect acc)
      in
      collect []

let retr t n =
  match cmd t (Printf.sprintf "RETR %d" n) with
  | None -> None
  | Some rest -> (
      match String.split_on_char ' ' (String.trim rest) with
      | octets :: _ -> (
          match int_of_string_opt octets with
          | Some len -> (
              match Lineio.read_exact t.io len with
              | Some body ->
                  (* consume the "\r\n.\r\n" terminator *)
                  ignore (Lineio.read_line t.io);
                  ignore (Lineio.read_line t.io);
                  Some (Bytes.to_string body)
              | None -> None)
          | None -> None)
      | [] -> None)

let dele t n = cmd t (Printf.sprintf "DELE %d" n) <> None

let quit t = ignore (cmd t "QUIT")

let xploit t = ignore (cmd t "XPLOIT")
