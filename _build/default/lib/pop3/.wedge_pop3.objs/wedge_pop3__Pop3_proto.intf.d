lib/pop3/pop3_proto.mli: Wedge_net
