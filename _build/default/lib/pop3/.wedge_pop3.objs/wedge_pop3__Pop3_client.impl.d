lib/pop3/pop3_client.ml: Bytes List Printf String Wedge_net
