lib/pop3/pop3_env.mli: Wedge_kernel
