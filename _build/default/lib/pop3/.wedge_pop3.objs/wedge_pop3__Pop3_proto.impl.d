lib/pop3/pop3_proto.ml: Bytes Printf Stdlib String Wedge_net
