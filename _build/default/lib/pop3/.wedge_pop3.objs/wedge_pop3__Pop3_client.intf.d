lib/pop3/pop3_client.mli: Wedge_net
