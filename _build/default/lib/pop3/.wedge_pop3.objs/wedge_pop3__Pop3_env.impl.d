lib/pop3/pop3_env.ml: List Printf String Wedge_crypto Wedge_kernel
