lib/pop3/pop3_mono.mli: Wedge_core Wedge_net
