lib/pop3/pop3_wedge.ml: List Option Pop3_env Pop3_proto Printf String Wedge_core Wedge_kernel Wedge_mem Wedge_net
