lib/pop3/pop3_wedge.mli: Wedge_core Wedge_kernel Wedge_mem Wedge_net
