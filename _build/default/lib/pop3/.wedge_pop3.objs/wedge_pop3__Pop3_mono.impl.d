lib/pop3/pop3_mono.ml: List Option Pop3_env Pop3_proto Printf Result String Wedge_core Wedge_kernel Wedge_net
