module Kernel = Wedge_kernel.Kernel
module Vfs = Wedge_kernel.Vfs
module Sha256 = Wedge_crypto.Sha256

type user = {
  name : string;
  uid : int;
  password : string;
  mails : string list;
}

let default_users =
  [
    {
      name = "alice";
      uid = 1000;
      password = "wonderland";
      mails =
        [
          "From: bob\r\nSubject: lunch\r\n\r\nNoon at the usual place?";
          "From: bank\r\nSubject: statement\r\n\r\nYour balance is 42.";
        ];
    };
    {
      name = "bob";
      uid = 1001;
      password = "builder";
      mails = [ "From: alice\r\nSubject: re: lunch\r\n\r\nSure." ];
    };
  ]

let passwd_path = "/etc/pop3.passwd"
let maildir name = "/var/mail/" ^ name

let hash_password ~salt pw = Sha256.hex (Sha256.digest_string (salt ^ pw))

let install k users =
  let vfs = k.Kernel.vfs in
  Vfs.mkdir_p vfs "/var/empty";
  let lines =
    List.map
      (fun u ->
        let salt = "s" ^ string_of_int u.uid in
        Printf.sprintf "%s:%d:%s:%s" u.name u.uid salt (hash_password ~salt u.password))
      users
  in
  Vfs.install vfs ~uid:0 ~mode:0o600 passwd_path (String.concat "\n" lines);
  List.iter
    (fun u ->
      Vfs.mkdir_p vfs ~uid:u.uid ~mode:0o700 (maildir u.name);
      List.iteri
        (fun i m ->
          Vfs.install vfs ~uid:u.uid ~mode:0o600
            (Printf.sprintf "%s/%d.eml" (maildir u.name) (i + 1))
            m)
        u.mails)
    users

let lookup_line ~passwd_file ~user =
  String.split_on_char '\n' passwd_file
  |> List.find_opt (fun line ->
         match String.index_opt line ':' with
         | Some i -> String.sub line 0 i = user
         | None -> false)

let check_password ~passwd_line ~user ~password =
  match String.split_on_char ':' passwd_line with
  | [ name; uid; salt; hash ] when name = user ->
      if String.equal (hash_password ~salt password) hash then int_of_string_opt uid else None
  | _ -> None
