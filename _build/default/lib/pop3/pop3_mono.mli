(** The monolithic POP3 server: one root-privileged process handles
    parsing, authentication and mail retrieval.  An exploit in the parser
    therefore owns the password database and every user's mail — the
    baseline §2 argues against. *)

val serve_connection :
  ?exploit:(Wedge_core.Wedge.ctx -> unit) ->
  Wedge_core.Wedge.ctx ->
  Wedge_net.Chan.ep ->
  unit
(** Handle one client connection in the given (privileged) context.  The
    optional [exploit] payload runs with this same context when the client
    sends the XPLOIT trigger. *)
