(** POP3 command parsing and the server session loop, shared by the
    monolithic and Wedge-partitioned servers.

    The loop is parameterised over a {!backend} — the monolithic server
    implements it with direct filesystem access, the partitioned server in
    terms of callgate invocations — so protocol behaviour is identical by
    construction and tests can assert equivalence.

    The [XPLOIT] pseudo-command models a vulnerability in the
    network-facing parser: when the server was built with an exploit hook,
    the attacker's payload runs {e in the compartment that parses client
    input}, which is the paper's attacker model. *)

type command =
  | User of string
  | Pass of string
  | Stat
  | List
  | Retr of int
  | Dele of int
  | Quit
  | Xploit
  | Unknown of string

val parse : string -> command

type backend = {
  login : user:string -> password:string -> bool;
  stat : unit -> (int * int) option;  (** (count, total bytes), [None] if unauthenticated *)
  list_mails : unit -> (int * int) list option;  (** (msgno, size) *)
  retr : int -> string option;
  dele : int -> bool;
}

val serve : Wedge_net.Lineio.t -> backend -> exploit:(unit -> unit) option -> unit
(** Run one POP3 session to QUIT or EOF. *)
