lib/mem/smalloc.mli: Wedge_kernel
