lib/mem/smalloc.ml: Printf Wedge_kernel
