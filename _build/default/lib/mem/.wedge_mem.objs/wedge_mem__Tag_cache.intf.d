lib/mem/tag_cache.mli: Wedge_kernel
