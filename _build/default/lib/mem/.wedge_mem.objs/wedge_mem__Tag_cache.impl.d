lib/mem/tag_cache.ml: Bytes Hashtbl List Wedge_kernel
