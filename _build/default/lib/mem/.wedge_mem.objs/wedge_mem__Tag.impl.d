lib/mem/tag.ml: Hashtbl List Wedge_kernel
