lib/mem/tag.mli:
