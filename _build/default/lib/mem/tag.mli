(** Memory tags (§3.2).

    A tag names a contiguous segment of the shared application address
    space.  The namespace is flat: privileges for one tag never imply
    privileges for another.  The registry is application-wide (the kernel
    holds the tag-to-segment mapping). *)

type t = {
  id : int;
  base : int;   (** segment base address (page aligned) *)
  pages : int;
  name : string;  (** programmer-visible label, for policies and Crowbar *)
  mutable live : bool;
  mutable frames : int array;
      (** backing physical frames; the registry holds one reference to each
          so a tag outlives the sthread that created it *)
}

val size_bytes : t -> int

(** Application-wide tag registry. *)
type registry

val registry_create : unit -> registry
val register : registry -> name:string -> base:int -> pages:int -> t
val find : registry -> int -> t option
val find_by_addr : registry -> int -> t option
(** The live tag whose segment contains the given address, if any. *)

val delete : registry -> t -> unit
(** Mark dead (the segment's frames are released by unmapping). *)

val live_tags : registry -> t list
