type t = {
  id : int;
  base : int;
  pages : int;
  name : string;
  mutable live : bool;
  mutable frames : int array;
}

let size_bytes t = t.pages * Wedge_kernel.Physmem.page_size

type registry = {
  tbl : (int, t) Hashtbl.t;
  mutable next_id : int;
}

let registry_create () = { tbl = Hashtbl.create 32; next_id = 1 }

let register reg ~name ~base ~pages =
  let id = reg.next_id in
  reg.next_id <- reg.next_id + 1;
  let t = { id; base; pages; name; live = true; frames = [||] } in
  Hashtbl.add reg.tbl id t;
  t

let find reg id =
  match Hashtbl.find_opt reg.tbl id with
  | Some t when t.live -> Some t
  | _ -> None

let find_by_addr reg addr =
  Hashtbl.fold
    (fun _ t acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if t.live && addr >= t.base && addr < t.base + size_bytes t then Some t
          else None)
    reg.tbl None

let delete reg t =
  t.live <- false;
  Hashtbl.remove reg.tbl t.id

let live_tags reg =
  Hashtbl.fold (fun _ t acc -> if t.live then t :: acc else acc) reg.tbl []
  |> List.sort (fun a b -> compare a.id b.id)
