(** The attacker model, made executable.

    The paper's attacker "exploits" a compartment — injected code runs with
    that compartment's privileges.  Here an exploit payload is an OCaml
    function receiving the compartment's capability handle ({!Wedge.ctx});
    these helpers probe what the payload can actually reach, and collect
    loot for the test assertions. *)

type loot

val loot_create : unit -> loot
val grab : loot -> label:string -> string -> unit
val stolen : loot -> label:string -> string option
val count : loot -> int
val labels : loot -> string list

val try_read : Wedge_core.Wedge.ctx -> addr:int -> len:int -> (string, string) result
(** Attempt a read with the compartment's privileges; [Error reason] if the
    MMU stops it. *)

val try_write : Wedge_core.Wedge.ctx -> addr:int -> string -> (unit, string) result

val steal_tag :
  Wedge_core.Wedge.ctx -> loot -> label:string -> Wedge_mem.Tag.t -> bool
(** Dump a whole tag segment into the loot if readable; [false] when the
    compartment is (correctly) denied. *)

val probe_tags : Wedge_core.Wedge.ctx -> Wedge_mem.Tag.t list -> (string * bool) list
(** Which of the given tags the compartment can read (tag name, readable). *)
