lib/net/mitm.ml: Buffer Bytes Chan Wedge_sim
