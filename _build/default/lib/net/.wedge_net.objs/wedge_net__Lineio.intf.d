lib/net/lineio.mli: Chan
