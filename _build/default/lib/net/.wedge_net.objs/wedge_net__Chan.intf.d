lib/net/chan.mli: Wedge_kernel Wedge_sim
