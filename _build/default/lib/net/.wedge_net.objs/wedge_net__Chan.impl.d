lib/net/chan.ml: Buffer Bytes Queue Wedge_kernel Wedge_sim
