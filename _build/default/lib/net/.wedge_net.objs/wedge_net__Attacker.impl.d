lib/net/attacker.ml: List Result Wedge_core Wedge_kernel Wedge_mem
