lib/net/mitm.mli: Chan
