lib/net/attacker.mli: Wedge_core Wedge_mem
