lib/net/lineio.ml: Buffer Bytes Chan String
