module Fiber = Wedge_sim.Fiber

type direction =
  | Client_to_server
  | Server_to_client

type action =
  | Forward
  | Replace of bytes
  | Drop

type t = {
  handler : direction -> bytes -> action;
  c2s_log : Buffer.t;
  s2c_log : Buffer.t;
  mutable client_side : Chan.ep option;
  mutable server_side : Chan.ep option;
  mutable running : bool;
}

let create ?(handler = fun _ _ -> Forward) () =
  {
    handler;
    c2s_log = Buffer.create 1024;
    s2c_log = Buffer.create 1024;
    client_side = None;
    server_side = None;
    running = false;
  }

let pump t dir src dst log =
  let rec loop () =
    let chunk = Chan.read src 4096 in
    if Bytes.length chunk = 0 then Chan.close dst
    else begin
      Buffer.add_bytes log chunk;
      (match t.handler dir chunk with
      | Forward -> Chan.write dst chunk
      | Replace b -> Chan.write dst b
      | Drop -> ());
      loop ()
    end
  in
  (try loop () with Fiber.Deadlock _ -> ())

let splice t ~client_side ~server_side =
  t.client_side <- Some client_side;
  t.server_side <- Some server_side;
  t.running <- true;
  Fiber.spawn (fun () -> pump t Client_to_server client_side server_side t.c2s_log);
  Fiber.spawn (fun () -> pump t Server_to_client server_side client_side t.s2c_log)

let inject t dir b =
  match (dir, t.server_side, t.client_side) with
  | Client_to_server, Some s, _ -> Chan.write s b
  | Server_to_client, _, Some c -> Chan.write c b
  | _ -> invalid_arg "Mitm.inject: not spliced"

let captured t = function
  | Client_to_server -> Buffer.contents t.c2s_log
  | Server_to_client -> Buffer.contents t.s2c_log

let stop t =
  (match t.client_side with Some c -> Chan.close c | None -> ());
  match t.server_side with Some s -> Chan.close s | None -> ()
