type t = {
  recv : int -> bytes;
  send : bytes -> unit;
  buf : Buffer.t;
  mutable eof : bool;
}

let create ~recv ~send = { recv; send; buf = Buffer.create 256; eof = false }
let of_chan ep = create ~recv:(fun n -> Chan.read ep n) ~send:(fun b -> Chan.write ep b)

let refill t =
  if not t.eof then begin
    let chunk = t.recv 512 in
    if Bytes.length chunk = 0 then t.eof <- true else Buffer.add_bytes t.buf chunk
  end

let find_newline t =
  let s = Buffer.contents t.buf in
  String.index_opt s '\n'

let consume t n =
  let s = Buffer.contents t.buf in
  let taken = String.sub s 0 n in
  Buffer.clear t.buf;
  Buffer.add_substring t.buf s n (String.length s - n);
  taken

let read_line t =
  let rec go () =
    match find_newline t with
    | Some i ->
        let line = consume t (i + 1) in
        let line = String.sub line 0 i in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        Some line
    | None ->
        if t.eof then
          if Buffer.length t.buf = 0 then None
          else Some (consume t (Buffer.length t.buf))
        else begin
          refill t;
          go ()
        end
  in
  go ()

let read_exact t n =
  let rec go () =
    if Buffer.length t.buf >= n then Some (Bytes.of_string (consume t n))
    else if t.eof then None
    else begin
      refill t;
      go ()
    end
  in
  go ()

let write t b = t.send b
let write_line t s = t.send (Bytes.of_string (s ^ "\r\n"))
