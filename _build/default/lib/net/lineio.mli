(** Buffered line-oriented I/O over abstract byte streams — the classic
    text-protocol front end (POP3, HTTP, SSH version exchange).  Works over
    compartment file descriptors or raw channels alike. *)

type t

val create : recv:(int -> bytes) -> send:(bytes -> unit) -> t
(** [recv n] returns up to [n] bytes, empty meaning EOF. *)

val of_chan : Chan.ep -> t

val read_line : t -> string option
(** Next line without its terminator (accepts LF and CRLF); [None] at
    EOF.  A final unterminated line is returned as-is. *)

val read_exact : t -> int -> bytes option
val write : t -> bytes -> unit
val write_line : t -> string -> unit
(** Appends CRLF. *)
