(** Man-in-the-middle interposition (threat model of §5.1.2).

    The interposer sits between a client-side and a server-side endpoint and
    pumps bytes in both directions through a programmable handler that can
    eavesdrop, forward, modify, drop or inject.  Everything forwarded is
    also recorded, modelling an attacker who captures full traces for later
    decryption once a key leaks. *)

type direction =
  | Client_to_server
  | Server_to_client

type action =
  | Forward            (** pass the chunk through unmodified *)
  | Replace of bytes   (** substitute the chunk *)
  | Drop               (** swallow the chunk *)

type t

val create : ?handler:(direction -> bytes -> action) -> unit -> t
(** Default handler forwards everything (passive eavesdropper). *)

val splice : t -> client_side:Chan.ep -> server_side:Chan.ep -> unit
(** Spawn the two pump fibers.  Must be called inside [Fiber.run]. *)

val inject : t -> direction -> bytes -> unit
(** Actively inject bytes toward one side. *)

val captured : t -> direction -> string
(** Everything observed so far in one direction. *)

val stop : t -> unit
(** Close both spliced endpoints. *)
