module W = Wedge_core.Wedge
module Tag = Wedge_mem.Tag
module Vm = Wedge_kernel.Vm

type loot = { mutable items : (string * string) list }

let loot_create () = { items = [] }
let grab l ~label data = l.items <- (label, data) :: l.items
let stolen l ~label = List.assoc_opt label l.items
let count l = List.length l.items
let labels l = List.rev_map fst l.items

let try_read ctx ~addr ~len =
  match W.read_string ctx addr len with
  | s -> Ok s
  | exception Vm.Fault f -> Error (Vm.fault_to_string f)

let try_write ctx ~addr data =
  match W.write_string ctx addr data with
  | () -> Ok ()
  | exception Vm.Fault f -> Error (Vm.fault_to_string f)

let steal_tag ctx loot ~label (tag : Tag.t) =
  match try_read ctx ~addr:tag.Tag.base ~len:(Tag.size_bytes tag) with
  | Ok data ->
      grab loot ~label data;
      true
  | Error _ -> false

let probe_tags ctx tags =
  List.map
    (fun (tag : Tag.t) ->
      (tag.Tag.name, Result.is_ok (try_read ctx ~addr:tag.Tag.base ~len:1)))
    tags
