lib/core/wedge.ml: Engine Sc
