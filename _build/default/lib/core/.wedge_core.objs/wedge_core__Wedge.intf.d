lib/core/wedge.mli: Engine Sc Wedge_kernel Wedge_mem Wedge_sim
