lib/core/sc.mli: Wedge_kernel Wedge_mem
