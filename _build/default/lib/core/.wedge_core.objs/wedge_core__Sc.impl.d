lib/core/sc.ml: List Option Wedge_kernel Wedge_mem
