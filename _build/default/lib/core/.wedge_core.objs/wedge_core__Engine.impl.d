lib/core/engine.ml: Array Bytes Filename Hashtbl List Option Printf Result Sc String Wedge_kernel Wedge_mem Wedge_sim
