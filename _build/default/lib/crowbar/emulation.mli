(** The sthread emulation library (§3.4): run a compartment body with
    access to {e all} memory so that protection violations do not terminate
    it, while logging every access the declared policy would have denied.
    Used with cb-log after refactoring: one run reveals the complete set of
    missing grants instead of crashing on the first. *)

type violation = {
  v_addr : int;
  v_len : int;
  v_mode : Wedge_sim.Instr.kind;
  v_tag : Wedge_mem.Tag.t option;  (** the tag owning the address, if any *)
  v_bt : Backtrace.frame list;     (** backtrace when cb-log is attached *)
}

val run :
  ?cblog:Cb_log.t ->
  Wedge_core.Wedge.ctx ->
  Wedge_core.Sc.t ->
  (Wedge_core.Wedge.ctx -> int -> int) ->
  int ->
  int * violation list
(** [run parent sc body arg] executes [body] as a pthread of [parent]
    (full access, §4.2: emulated sthreads are standard pthreads), checking
    each access against what [sc] would have allowed and collecting the
    would-be violations. *)

val missing_grants : Wedge_core.Wedge.app -> violation list -> (Wedge_mem.Tag.t * Wedge_kernel.Prot.grant) list
(** Summarise violations into the tag grants the policy lacks. *)

val pp_violations : Format.formatter -> violation list -> unit
