type frame = {
  fn : string;
  file : string;
  line : int;
}

type t = { mutable stack : frame list }

let create () = { stack = [] }
let push t f = t.stack <- f :: t.stack

let pop t =
  match t.stack with
  | [] -> invalid_arg "Backtrace.pop: empty stack"
  | _ :: rest -> t.stack <- rest

let current t = t.stack
let depth t = List.length t.stack
let in_scope t ~fn = List.exists (fun f -> f.fn = fn) t.stack
let frame_to_string f = Printf.sprintf "%s (%s:%d)" f.fn f.file f.line
