module Instr = Wedge_sim.Instr

type t = {
  tr : Trace.t;
  bt : Backtrace.t;
}

let create () = { tr = Trace.create (); bt = Backtrace.create () }
let trace t = t.tr
let backtrace t = t.bt

let kind_of_alloc = function
  | Instr.Heap -> (Trace.Heap, None)
  | Instr.Tagged (id, name) -> (Trace.Tagged id, Some name)
  | Instr.Stack fn -> (Trace.Stack_frame fn, None)
  | Instr.Global name -> (Trace.Global name, None)

let instr t =
  {
    Instr.on_access =
      (fun addr len kind ->
        Trace.record t.tr ~addr ~len
          ~mode:(match kind with Instr.Read -> Trace.Read | Instr.Write -> Trace.Write)
          ~bt:(Backtrace.current t.bt));
    on_enter = (fun fn file line -> Backtrace.push t.bt { Backtrace.fn; file; line });
    on_exit = (fun () -> Backtrace.pop t.bt);
    on_alloc =
      (fun base len kind ->
        let kind, label = kind_of_alloc kind in
        ignore (Trace.add_segment t.tr ?label ~base ~len ~kind ~bt:(Backtrace.current t.bt)));
    on_free = (fun base -> Trace.retire_segment t.tr ~base);
  }

let native = Instr.null

(* Pin without tools: each basic block (here: function) pays a one-time
   translation cost when first fetched; afterwards only the cached
   translated code runs, with a small dispatch overhead per execution.
   This reproduces Figure 9's observation that Pin is cheapest for
   workloads that re-execute the same blocks many times. *)
type pin = {
  translated : (string, unit) Hashtbl.t;
  mutable translations : int;
  mutable executions : int;
  mutable sink : int;
}

let pin () = { translated = Hashtbl.create 64; translations = 0; executions = 0; sink = 0 }

let translate p fn =
  if not (Hashtbl.mem p.translated fn) then begin
    Hashtbl.add p.translated fn ();
    p.translations <- p.translations + 1;
    (* Translation burns work proportional to code size. *)
    let acc = ref p.sink in
    for i = 1 to 2_000 do
      acc := (!acc * 31) + i
    done;
    p.sink <- !acc
  end

let pin_instr p =
  {
    Instr.on_access =
      (fun addr len _ ->
        (* Per-access dispatch overhead of translated code: an address
           translation plus bookkeeping, a handful of instructions. *)
        let x = (p.sink lxor addr) * 0x9E3779B1 in
        p.sink <- (x + len) land max_int);
    on_enter =
      (fun fn _ _ ->
        translate p fn;
        p.executions <- p.executions + 1;
        p.sink <- p.sink + 1);
    on_exit = (fun () -> ());
    on_alloc = (fun _ _ _ -> ());
    on_free = (fun _ -> ());
  }

let pin_blocks_translated p = p.translations
let pin_block_executions p = p.executions
