module W = Wedge_core.Wedge
module Sc = Wedge_core.Sc
module Instr = Wedge_sim.Instr
module Prot = Wedge_kernel.Prot
module Layout = Wedge_kernel.Layout
module Tag = Wedge_mem.Tag

type violation = {
  v_addr : int;
  v_len : int;
  v_mode : Instr.kind;
  v_tag : Tag.t option;
  v_bt : Backtrace.frame list;
}

(* Would the declared policy allow this access?  The pristine snapshot,
   the private stack and heap are always allowed; tagged memory follows
   the sc's grants (copy-on-write cannot be emulated with pthreads, §4.2,
   so COW counts as write-allowed). *)
let allowed app (sc : Sc.t) addr kind =
  let data_end = Layout.data_base + (0x4000 * 4096) in
  ignore data_end;
  let in_range base pages = addr >= base && addr < base + (pages * 4096) in
  if in_range Layout.heap_base Layout.heap_pages then true
  else if in_range Layout.stack_base Layout.stack_pages then true
  else
    match W.find_tag_by_addr app addr with
    | Some tag -> (
        match Sc.mem_grant_of sc tag.Tag.id with
        | Some Prot.RW | Some Prot.COW -> true
        | Some Prot.R -> kind = Instr.Read
        | None -> false)
    | None ->
        (* untagged non-heap memory: the pristine image (always granted,
           copy-on-write) *)
        addr >= Layout.data_base && addr < Layout.tag_base

let run ?cblog parent sc body arg =
  let app = W.app_of parent in
  let violations = ref [] in
  let base_instr =
    match cblog with Some l -> Cb_log.instr l | None -> W.instr_of parent
  in
  let checking =
    {
      Instr.on_access =
        (fun addr len kind ->
          base_instr.Instr.on_access addr len kind;
          if not (allowed app sc addr kind) then
            violations :=
              {
                v_addr = addr;
                v_len = len;
                v_mode = kind;
                v_tag = W.find_tag_by_addr app addr;
                v_bt =
                  (match cblog with
                  | Some l -> Backtrace.current (Cb_log.backtrace l)
                  | None -> []);
              }
              :: !violations);
      on_enter = base_instr.Instr.on_enter;
      on_exit = base_instr.Instr.on_exit;
      on_alloc = base_instr.Instr.on_alloc;
      on_free = base_instr.Instr.on_free;
    }
  in
  let saved = W.instr_of parent in
  W.set_instr parent checking;
  let result =
    match W.pthread parent (fun ctx -> body ctx arg) with
    | v -> v
    | exception e ->
        W.set_instr parent saved;
        raise e
  in
  W.set_instr parent saved;
  (result, List.rev !violations)

let missing_grants _app violations =
  let tbl : (int, Tag.t * Wedge_kernel.Prot.grant) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun v ->
      match v.v_tag with
      | None -> ()
      | Some tag ->
          let want = if v.v_mode = Instr.Write then Prot.RW else Prot.R in
          let merged =
            match Hashtbl.find_opt tbl tag.Tag.id with
            | Some (_, Prot.RW) -> Prot.RW
            | Some (_, _) | None -> want
          in
          Hashtbl.replace tbl tag.Tag.id (tag, merged))
    violations;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun ((a : Tag.t), _) ((b : Tag.t), _) -> compare a.Tag.id b.Tag.id)

let pp_violations fmt l =
  List.iter
    (fun v ->
      Format.fprintf fmt "  %s 0x%x (%d bytes) in %s from %s@."
        (match v.v_mode with Instr.Read -> "read" | Instr.Write -> "write")
        v.v_addr v.v_len
        (match v.v_tag with Some t -> "tag " ^ t.Tag.name | None -> "untagged memory")
        (match v.v_bt with [] -> "?" | f :: _ -> Backtrace.frame_to_string f))
    l
