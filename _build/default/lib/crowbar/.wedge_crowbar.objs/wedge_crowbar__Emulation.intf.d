lib/crowbar/emulation.mli: Backtrace Cb_log Format Wedge_core Wedge_kernel Wedge_mem Wedge_sim
