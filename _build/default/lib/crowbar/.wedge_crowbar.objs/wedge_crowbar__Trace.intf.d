lib/crowbar/trace.mli: Backtrace
