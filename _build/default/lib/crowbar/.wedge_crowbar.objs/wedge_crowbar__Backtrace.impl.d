lib/crowbar/backtrace.ml: List Printf
