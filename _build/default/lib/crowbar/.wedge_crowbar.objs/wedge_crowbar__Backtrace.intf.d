lib/crowbar/backtrace.mli:
