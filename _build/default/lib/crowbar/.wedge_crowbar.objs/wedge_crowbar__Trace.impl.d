lib/crowbar/trace.ml: Array Backtrace Buffer Char Fun Hashtbl List Option Printf String
