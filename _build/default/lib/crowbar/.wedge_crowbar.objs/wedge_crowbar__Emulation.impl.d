lib/crowbar/emulation.ml: Backtrace Cb_log Format Hashtbl List Wedge_core Wedge_kernel Wedge_mem Wedge_sim
