lib/crowbar/cb_analyze.ml: Array Backtrace Format Hashtbl List Trace Wedge_kernel
