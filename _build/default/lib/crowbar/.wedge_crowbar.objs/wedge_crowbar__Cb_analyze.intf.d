lib/crowbar/cb_analyze.mli: Format Trace Wedge_kernel
