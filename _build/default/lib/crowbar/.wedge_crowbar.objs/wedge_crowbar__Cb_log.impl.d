lib/crowbar/cb_log.ml: Backtrace Hashtbl Trace Wedge_sim
