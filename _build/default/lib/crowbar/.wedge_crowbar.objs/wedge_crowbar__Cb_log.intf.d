lib/crowbar/cb_log.mli: Backtrace Trace Wedge_sim
