(** cb-log: the run-time instrumentation half of Crowbar (§4.2).

    The paper builds cb-log on Pin; here it attaches to the explicit
    instrumentation hooks ({!Wedge_sim.Instr}) that all simulated memory
    accessors call.  Three modes reproduce the three bars of Figure 9:

    - {!native}: no instrumentation at all;
    - {!pin}: Pin alone — basic blocks are instrumented once when first
      fetched (a per-function translation cost) and executions are counted;
    - {!create}: full cb-log — every load and store is recorded with a
      complete backtrace and allocation-site attribution. *)

type t

val create : unit -> t
val instr : t -> Wedge_sim.Instr.t
val trace : t -> Trace.t
val backtrace : t -> Backtrace.t

val native : Wedge_sim.Instr.t
(** Alias of {!Wedge_sim.Instr.null}. *)

(** Pin-without-instrumentation: models dynamic binary translation. *)
type pin

val pin : unit -> pin
val pin_instr : pin -> Wedge_sim.Instr.t
val pin_blocks_translated : pin -> int
val pin_block_executions : pin -> int
