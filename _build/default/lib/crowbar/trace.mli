(** cb-log traces: every memory access with a full backtrace, attributed to
    the segment (global / heap allocation / tagged segment / stack frame)
    containing it and the offset within that segment (§4.2). *)

type seg_kind =
  | Global of string       (** a named global variable *)
  | Heap                    (** a malloc'd buffer *)
  | Tagged of int           (** an smalloc'd buffer or tag segment (tag id) *)
  | Stack_frame of string   (** a function's stack frame (function name) *)

type segment = {
  seg_id : int;
  base : int;
  len : int;
  kind : seg_kind;
  label : string option;  (** human-readable name (e.g. the tag's name) *)
  alloc_bt : Backtrace.frame list;  (** backtrace of the original allocation *)
  mutable live : bool;
}

type mode =
  | Read
  | Write

type access = {
  a_addr : int;
  a_len : int;
  a_mode : mode;
  a_bt : Backtrace.frame list;  (** full backtrace of the access *)
  a_seg : segment option;
  a_off : int;  (** offset within the segment (−1 when unattributed) *)
}

type t

val create : unit -> t
val add_segment :
  ?label:string -> t -> base:int -> len:int -> kind:seg_kind -> bt:Backtrace.frame list -> segment

val retire_segment : t -> base:int -> unit
val find_segment : t -> int -> segment option
(** The live segment containing an address. *)

val record : t -> addr:int -> len:int -> mode:mode -> bt:Backtrace.frame list -> unit
val accesses : t -> access array
(** In program order. *)

val access_count : t -> int
val segments : t -> segment list
val seg_kind_to_string : seg_kind -> string
val describe : segment -> string
(** Kind plus label when present: [tag 3 "session key"]. *)

val merge : t list -> t
(** Aggregate traces from several runs/workloads (§3.4: run diverse
    innocuous workloads and analyze the aggregation). *)

(** {2 On-disk traces}

    cb-log in the paper produces log files that cb-analyze queries offline;
    the same split works here: [save] during the instrumented run, [load]
    in the analysis tool. *)

val save : t -> string -> unit
(** Write the trace to a file (a line-oriented text format: one [S] line
    per segment, one [A] line per access with its backtrace). *)

val load : string -> (t, string) result
(** Read a trace written by {!save}. *)
