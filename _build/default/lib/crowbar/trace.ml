type seg_kind =
  | Global of string
  | Heap
  | Tagged of int
  | Stack_frame of string

type segment = {
  seg_id : int;
  base : int;
  len : int;
  kind : seg_kind;
  label : string option;
  alloc_bt : Backtrace.frame list;
  mutable live : bool;
}

type mode =
  | Read
  | Write

type access = {
  a_addr : int;
  a_len : int;
  a_mode : mode;
  a_bt : Backtrace.frame list;
  a_seg : segment option;
  a_off : int;
}

type t = {
  mutable accs : access array;
  mutable count : int;
  mutable segs : segment list;
  by_page : (int, segment list ref) Hashtbl.t;  (* page -> overlapping segments *)
  mutable next_seg : int;
  mutable last_seg : segment option;  (* locality cache for attribution *)
}

let dummy_access =
  { a_addr = 0; a_len = 0; a_mode = Read; a_bt = []; a_seg = None; a_off = -1 }

let create () =
  {
    accs = Array.make 1024 dummy_access;
    count = 0;
    segs = [];
    by_page = Hashtbl.create 256;
    next_seg = 1;
    last_seg = None;
  }

let page a = a lsr 12

let add_segment ?label t ~base ~len ~kind ~bt =
  let seg = { seg_id = t.next_seg; base; len; kind; label; alloc_bt = bt; live = true } in
  t.next_seg <- t.next_seg + 1;
  t.segs <- seg :: t.segs;
  for p = page base to page (base + len - 1) do
    match Hashtbl.find_opt t.by_page p with
    | Some l -> l := seg :: !l
    | None -> Hashtbl.add t.by_page p (ref [ seg ])
  done;
  seg

let retire_segment t ~base =
  match Hashtbl.find_opt t.by_page (page base) with
  | Some l -> (
      match List.find_opt (fun s -> s.live && s.base = base) !l with
      | Some s -> s.live <- false
      | None -> ())
  | None -> ()

let find_segment t addr =
  match Hashtbl.find_opt t.by_page (page addr) with
  | None -> None
  | Some l ->
      (* Innermost (most recently allocated) live segment wins, so a
         malloc'd buffer inside a tag segment attributes to the buffer. *)
      List.find_opt (fun s -> s.live && addr >= s.base && addr < s.base + s.len) !l

let grow t =
  let fresh = Array.make (Array.length t.accs * 2) t.accs.(0) in
  Array.blit t.accs 0 fresh 0 t.count;
  t.accs <- fresh

let record t ~addr ~len ~mode ~bt =
  if t.count = Array.length t.accs then grow t;
  (* Accesses are strongly local: check the last-hit segment first. *)
  let seg =
    match t.last_seg with
    | Some s when s.live && addr >= s.base && addr < s.base + s.len -> Some s
    | _ ->
        let s = find_segment t addr in
        t.last_seg <- s;
        s
  in
  let off = match seg with Some s -> addr - s.base | None -> -1 in
  t.accs.(t.count) <- { a_addr = addr; a_len = len; a_mode = mode; a_bt = bt; a_seg = seg; a_off = off };
  t.count <- t.count + 1

let accesses t = Array.sub t.accs 0 t.count
let access_count t = t.count
let segments t = List.rev t.segs

let seg_kind_to_string = function
  | Global name -> "global " ^ name
  | Heap -> "heap"
  | Tagged id -> Printf.sprintf "tag %d" id
  | Stack_frame fn -> "stack frame of " ^ fn

let describe seg =
  match seg.label with
  | Some l -> Printf.sprintf "%s %S" (seg_kind_to_string seg.kind) l
  | None -> seg_kind_to_string seg.kind

(* ------------------------------------------------------------------ *)
(* On-disk format: one record per line.
     S <id> <base> <len> <live> <kind...> | <bt frames...>
     A <addr> <len> <R/W> <seg_id|-> <off> | <bt frames...>
   Frames are "fn@file@line" separated by spaces; fields are %-escaped. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | ' ' -> Buffer.add_string b "%20"
      | '@' -> Buffer.add_string b "%40"
      | '|' -> Buffer.add_string b "%7c"
      | '\n' -> Buffer.add_string b "%0a"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let kind_encode = function
  | Global name -> "G " ^ escape name
  | Heap -> "H"
  | Tagged id -> "T " ^ string_of_int id
  | Stack_frame fn -> "F " ^ escape fn

let kind_decode = function
  | [ "H" ] -> Some Heap
  | [ "G"; name ] -> Some (Global (unescape name))
  | [ "T"; id ] -> Option.map (fun i -> Tagged i) (int_of_string_opt id)
  | [ "F"; fn ] -> Some (Stack_frame (unescape fn))
  | _ -> None

let bt_encode bt =
  String.concat " "
    (List.map
       (fun f -> Printf.sprintf "%s@%s@%d" (escape f.Backtrace.fn) (escape f.Backtrace.file) f.Backtrace.line)
       bt)

let bt_decode s =
  if String.trim s = "" then Some []
  else
    String.split_on_char ' ' (String.trim s)
    |> List.map (fun frame ->
           match String.split_on_char '@' frame with
           | [ fn; file; line ] ->
               Option.map
                 (fun line -> { Backtrace.fn = unescape fn; file = unescape file; line })
                 (int_of_string_opt line)
           | _ -> None)
    |> fun l -> if List.for_all Option.is_some l then Some (List.filter_map Fun.id l) else None

let save t path =
  let oc = open_out path in
  List.iter
    (fun s ->
      Printf.fprintf oc "S %d %d %d %b %s %s | %s\n" s.seg_id s.base s.len s.live
        (match s.label with Some l -> escape l | None -> "-")
        (kind_encode s.kind) (bt_encode s.alloc_bt))
    (List.rev t.segs);
  Array.iter
    (fun a ->
      Printf.fprintf oc "A %d %d %s %s %d | %s\n" a.a_addr a.a_len
        (match a.a_mode with Read -> "R" | Write -> "W")
        (match a.a_seg with Some s -> string_of_int s.seg_id | None -> "-")
        a.a_off (bt_encode a.a_bt))
    (Array.sub t.accs 0 t.count);
  close_out oc

let load path =
  try
    let ic = open_in path in
    let out = create () in
    let by_id = Hashtbl.create 64 in
    let err = ref None in
    (try
       let lineno = ref 0 in
       while true do
         incr lineno;
         let line = input_line ic in
         let fail () = err := Some (Printf.sprintf "%s:%d: malformed line" path !lineno) in
         match String.index_opt line '|' with
         | None -> if String.trim line <> "" then fail ()
         | Some bar -> (
             let head = String.sub line 0 bar in
             let bt_str = String.sub line (bar + 1) (String.length line - bar - 1) in
             match (String.split_on_char ' ' (String.trim head), bt_decode bt_str) with
             | "S" :: id :: base :: len :: live :: label :: kind, Some bt -> (
                 match
                   (int_of_string_opt id, int_of_string_opt base, int_of_string_opt len,
                    bool_of_string_opt live, kind_decode kind)
                 with
                 | Some id, Some base, Some len, Some live, Some kind ->
                     let label = if label = "-" then None else Some (unescape label) in
                     let s = add_segment out ?label ~base ~len ~kind ~bt in
                     s.live <- live;
                     Hashtbl.replace by_id id s
                 | _ -> fail ())
             | [ "A"; addr; len; mode; seg; off ], Some bt -> (
                 match
                   (int_of_string_opt addr, int_of_string_opt len, int_of_string_opt off)
                 with
                 | Some addr, Some len, Some off ->
                     let seg =
                       match int_of_string_opt seg with
                       | Some id -> Hashtbl.find_opt by_id id
                       | None -> None
                     in
                     if out.count = Array.length out.accs then grow out;
                     out.accs.(out.count) <-
                       {
                         a_addr = addr;
                         a_len = len;
                         a_mode = (if mode = "W" then Write else Read);
                         a_bt = bt;
                         a_seg = seg;
                         a_off = off;
                       };
                     out.count <- out.count + 1
                 | _ -> fail ())
             | _ -> fail ())
       done
     with End_of_file -> ());
    close_in ic;
    match !err with Some e -> Error e | None -> Ok out
  with Sys_error e -> Error e

let merge traces =
  let out = create () in
  List.iter
    (fun tr ->
      List.iter
        (fun s ->
          let s' = add_segment out ?label:s.label ~base:s.base ~len:s.len ~kind:s.kind ~bt:s.alloc_bt in
          s'.live <- s.live)
        (segments tr);
      Array.iter
        (fun a ->
          if out.count = Array.length out.accs then grow out;
          out.accs.(out.count) <- a;
          out.count <- out.count + 1)
        (accesses tr))
    traces;
  out
