(** Call-stack tracking for cb-log (§4.2): the simulation's stand-in for
    walking saved frame pointers.  Snapshots are O(1) — the current stack
    is an immutable list shared by every access record taken while it is
    live. *)

type frame = {
  fn : string;
  file : string;
  line : int;
}

type t

val create : unit -> t
val push : t -> frame -> unit
val pop : t -> unit
val current : t -> frame list
(** Innermost first. *)

val depth : t -> int
val in_scope : t -> fn:string -> bool
(** Whether a function of this name is anywhere on the stack. *)

val frame_to_string : frame -> string
