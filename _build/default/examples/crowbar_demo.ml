(* The Crowbar workflow (§3.4): trace a monolithic run with cb-log, query
   it with cb-analyze's three query types, let the emulation library find
   the missing grants after a refactor, and end with a working
   least-privilege policy.

   Run with:  dune exec examples/crowbar_demo.exe *)

module Kernel = Wedge_kernel.Kernel
module Prot = Wedge_kernel.Prot
module Instr = Wedge_sim.Instr
module Tag = Wedge_mem.Tag
module W = Wedge_core.Wedge
module Cb_log = Wedge_crowbar.Cb_log
module Cb_analyze = Wedge_crowbar.Cb_analyze
module Trace = Wedge_crowbar.Trace
module Emulation = Wedge_crowbar.Emulation

let fmt = Format.std_formatter

let () =
  let k = Kernel.create () in
  let app = W.create_app k in
  let main = W.main_ctx app in
  W.boot app;
  (* ---- phase 1: run the monolithic code under cb-log (attached before
     any allocation, so every segment gets an allocation site) ---- *)
  print_endline "== cb-log: tracing the monolithic run ==";
  let log = Cb_log.create () in
  W.set_instr main (Cb_log.instr log);
  let request_tag = W.tag_new ~name:"request" main in
  let reply_tag = W.tag_new ~name:"reply" main in
  let creds_tag = W.tag_new ~name:"credentials" main in
  let req = W.smalloc main 128 request_tag in
  let rep = W.smalloc main 128 reply_tag in
  let creds = W.smalloc main 64 creds_tag in
  W.write_string main req "LOGIN alice hunter2";
  W.write_string main creds "alice:hunter2";
  let fn name f = W.in_function main ~name ~file:"server.ml" ~line:1 f in
  fn "handle_request" (fun () ->
      fn "parse_command" (fun () -> ignore (W.read_string main req 19));
      fn "check_credentials" (fun () -> ignore (W.read_string main creds 13));
      fn "format_reply" (fun () ->
          let scratch = W.malloc main 64 in
          W.write_string main scratch "+OK";
          W.write_string main rep (W.read_string main scratch 3)));
  W.set_instr main Instr.null;
  let tr = Cb_log.trace log in
  Printf.printf "  trace: %d accesses over %d segments\n\n" (Trace.access_count tr)
    (List.length (Trace.segments tr));

  (* ---- phase 2: the three cb-analyze queries ---- *)
  print_endline "== query 1: what does handle_request (and descendants) touch? ==";
  Cb_analyze.pp_items fmt (Cb_analyze.items_used_by tr ~fn:"handle_request");
  print_endline "\n== query 2: which procedures touch the credentials? ==";
  let cred_segs =
    List.filter (fun s -> s.Trace.kind = Trace.Tagged creds_tag.Tag.id) (Trace.segments tr)
  in
  Cb_analyze.pp_procs fmt (Cb_analyze.procedures_using tr ~segments:cred_segs);
  print_endline "\n== query 3: where does format_reply write? ==";
  Cb_analyze.pp_items fmt (Cb_analyze.writes_of tr ~fn:"format_reply");

  (* ---- phase 3: suggested policy, with the credentials factored out to
     a callgate (the programmer's decision, not Crowbar's - §7) ---- *)
  print_endline "\n== suggested sthread policy for handle_request ==";
  Cb_analyze.pp_suggestions fmt (Cb_analyze.suggest_policy tr ~fn:"handle_request");
  print_endline "  (programmer: credentials go behind a callgate instead)";

  (* ---- phase 4: after "refactoring", the emulation library reveals a
     forgotten grant without crashing ---- *)
  print_endline "\n== sthread emulation: a policy missing the reply tag ==";
  let sc = W.sc_create () in
  W.sc_mem_add sc request_tag Prot.R;
  let _, violations =
    Emulation.run main sc
      (fun ctx _ ->
        ignore (W.read_string ctx req 19);
        W.write_string ctx rep "+OK";
        0)
      0
  in
  Emulation.pp_violations fmt violations;
  List.iter
    (fun (tag, grant) ->
      Printf.printf "  -> missing grant: %s on tag %s\n" (Prot.grant_to_string grant)
        tag.Tag.name;
      W.sc_mem_add sc tag grant)
    (Emulation.missing_grants app violations);

  (* ---- phase 5: the completed policy runs default-deny, clean ---- *)
  let h =
    W.sthread_create main sc
      (fun ctx _ ->
        ignore (W.read_string ctx req 19);
        W.write_string ctx rep "+OK";
        match W.read_u8 ctx creds with
        | _ -> 1
        | exception Wedge_kernel.Vm.Fault _ -> 0)
      0
  in
  (match W.sthread_join main h with
  | 0 -> print_endline "\n== final sthread: runs clean; credentials still unreachable =="
  | _ -> print_endline "\n!!! unexpected: sthread reached the credentials");
  print_endline "crowbar demo done."
