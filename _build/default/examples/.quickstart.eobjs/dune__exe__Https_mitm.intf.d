examples/https_mitm.mli:
