examples/quickstart.ml: Bytes Char Printf Wedge_core Wedge_kernel
