examples/crowbar_demo.ml: Format List Printf Wedge_core Wedge_crowbar Wedge_kernel Wedge_mem Wedge_sim
