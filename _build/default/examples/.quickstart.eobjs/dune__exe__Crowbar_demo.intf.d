examples/crowbar_demo.mli:
