examples/ssh_login.ml: List Option Printf String Wedge_core Wedge_crypto Wedge_kernel Wedge_net Wedge_sim Wedge_sshd
