examples/quickstart.mli:
