examples/https_mitm.ml: Bytes Char List Printf String Wedge_core Wedge_crypto Wedge_httpd Wedge_kernel Wedge_mem Wedge_net Wedge_sim Wedge_tls
