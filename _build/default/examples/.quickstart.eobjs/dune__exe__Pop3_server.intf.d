examples/pop3_server.mli:
