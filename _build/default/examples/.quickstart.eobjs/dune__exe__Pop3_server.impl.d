examples/pop3_server.ml: List Printf String Wedge_core Wedge_kernel Wedge_net Wedge_pop3 Wedge_sim
