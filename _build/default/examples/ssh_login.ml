(* OpenSSH partitioned with Wedge (§5.2, Figure 6): all three
   authentication methods, the username-probing lesson, and the PAM
   scratch-memory lesson against the fork-based privilege-separation
   baseline.

   Run with:  dune exec examples/ssh_login.exe *)

module Kernel = Wedge_kernel.Kernel
module Layout = Wedge_kernel.Layout
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Attacker = Wedge_net.Attacker
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Dsa = Wedge_crypto.Dsa
module W = Wedge_core.Wedge
module Env = Wedge_sshd.Sshd_env
module Privsep = Wedge_sshd.Sshd_privsep
module Wedge_d = Wedge_sshd.Sshd_wedge
module Client = Wedge_sshd.Ssh_client

let with_conn env serve f =
  let out = ref None in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair () in
      Fiber.spawn (fun () -> serve env server_ep);
      match
        Client.start ~rng:(Drbg.create ~seed:11) ~pinned_rsa:env.Env.host_rsa.Rsa.pub
          ~pinned_dsa:env.Env.host_dsa.Dsa.pub client_ep
      with
      | Error e -> failwith e
      | Ok conn ->
          out := Some (f conn);
          Client.close conn);
  Option.get !out

let wedge env ep = ignore (Wedge_d.serve_connection env ep)

let () =
  let k = Kernel.create () in
  let env = Env.install k in
  print_endline "== Wedge-partitioned sshd: three authentication methods ==";
  let alice = List.hd env.Env.users in
  Printf.printf "  password:   %b\n"
    (with_conn env wedge (fun c -> Client.authenticate c ~user:"alice" (Client.Password "wonderland")));
  Printf.printf "  DSA pubkey: %b\n"
    (with_conn env wedge (fun c ->
         Client.authenticate c ~user:"alice" (Client.Pubkey (Env.user_key alice))));
  Printf.printf "  S/Key OTP:  %b\n"
    (with_conn env wedge (fun c -> Client.authenticate c ~user:"alice" (Client.Skey "rabbit hole")));
  Printf.printf "  shell runs as: %s\n"
    (Option.value ~default:"?" (with_conn env wedge (fun c ->
         ignore (Client.authenticate c ~user:"alice" (Client.Password "wonderland"));
         Client.exec c "shell")));

  print_endline "\n== lesson 1: username probing (S/Key challenges over the network) ==";
  let probe name serve =
    let known, unknown =
      with_conn env serve (fun c ->
          ( Client.skey_challenge_for c ~user:"alice" <> None,
            Client.skey_challenge_for c ~user:"mallory" <> None ))
    in
    Printf.printf "  %-28s alice -> challenge:%b   mallory -> challenge:%b%s\n" name known
      unknown
      (if known <> unknown then "   <- existence leaked!" else "   (indistinguishable)")
  in
  probe "privsep (pre-fix behaviour):" (fun env ep -> Privsep.serve_connection env ep);
  probe "wedge (dummy challenges):" wedge;

  print_endline "\n== lesson 2: PAM scratch memory across fork ==";
  let hunt ctx =
    let found = ref false in
    for page = 0 to Layout.heap_pages - 1 do
      match Attacker.try_read ctx ~addr:(Layout.heap_base + (page * 4096)) ~len:4096 with
      | Ok data ->
          let needle = "wonderland" in
          let nl = String.length needle and hl = String.length data in
          let rec go i = i + nl <= hl && (String.sub data i nl = needle || go (i + 1)) in
          if go 0 then found := true
      | Error _ -> ()
    done;
    !found
  in
  (* Connection 1 authenticates alice; connection 2 is exploited. *)
  ignore
    (with_conn env (fun env ep -> Privsep.serve_connection env ep) (fun c ->
         Client.authenticate c ~user:"alice" (Client.Password "wonderland")));
  let stolen = ref false in
  ignore
    (with_conn env
       (fun env ep ->
         Privsep.serve_connection ~exploit:(fun ctx _monitor -> stolen := hunt ctx) env ep)
       (fun c -> Client.exec c "xploit"));
  Printf.printf "  privsep slave (forked): previous user's password in heap: %b\n" !stolen;
  let stolen_w = ref false in
  ignore
    (with_conn env (fun env ep -> wedge env ep) (fun c ->
         Client.authenticate c ~user:"alice" (Client.Password "wonderland")));
  ignore
    (with_conn env
       (fun env ep ->
         ignore (Wedge_d.serve_connection ~exploit:(fun ctx -> stolen_w := hunt ctx) env ep))
       (fun c -> Client.exec c "xploit"));
  Printf.printf "  wedge worker (no inheritance): previous user's password in heap: %b\n" !stolen_w;
  print_endline "\nSthreads inherit no memory, so there is nothing to scrub (paper, 5.2)."
