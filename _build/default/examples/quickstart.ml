(* Quickstart: the Wedge primitives in ~60 lines.

   A secret lives in tagged memory.  A default-deny sthread cannot touch
   it; a callgate computes over it on the sthread's behalf; the
   privilege-subset rule stops escalation.

   Run with:  dune exec examples/quickstart.exe *)

module Kernel = Wedge_kernel.Kernel
module Prot = Wedge_kernel.Prot
module W = Wedge_core.Wedge

let () =
  (* Boot an application on the simulated kernel.  [boot] takes the
     pristine pre-main snapshot every sthread will inherit copy-on-write. *)
  let kernel = Kernel.create () in
  let app = W.create_app kernel in
  let main = W.main_ctx app in
  W.boot app;

  (* A secret in tagged memory. *)
  let secret_tag = W.tag_new ~name:"secret" main in
  let key = W.smalloc main 32 secret_tag in
  W.write_string main key "never give this to the network!";

  (* A callgate that may read the secret; it returns only a derived,
     harmless value (here: a checksum). *)
  let cgsc = W.sc_create () in
  W.sc_mem_add cgsc secret_tag Prot.R;
  let worker_sc = W.sc_create () in
  let checksum_gate =
    W.sc_cgate_add main worker_sc ~name:"checksum_secret"
      ~entry:(fun gctx ~trusted ~arg:_ ->
        let b = W.read_bytes gctx trusted 31 in
        Bytes.fold_left (fun acc c -> (acc + Char.code c) land 0xffff) 0 b)
      ~cgsc ~trusted:key
  in

  (* A default-deny worker: its whole privilege is "invoke that gate". *)
  let handle =
    W.sthread_create main worker_sc
      (fun ctx _ ->
        (* Direct access? The MMU says no. *)
        (match W.read_u8 ctx key with
        | _ -> print_endline "  !!! worker read the secret (bug)"
        | exception Wedge_kernel.Vm.Fault _ ->
            print_endline "  worker -> direct read of the secret: protection fault (good)");
        (* Escalation? The subset rule says no. *)
        let grab = W.sc_create () in
        W.sc_mem_add grab secret_tag Prot.R;
        (match W.sthread_create ctx grab (fun _ _ -> 0) 0 with
        | _ -> print_endline "  !!! worker minted a privileged child (bug)"
        | exception W.Privilege_violation _ ->
            print_endline "  worker -> grant itself the secret tag: privilege violation (good)");
        (* The sanctioned path: the callgate. *)
        W.cgate ctx checksum_gate ~perms:(W.sc_create ()) ~arg:0)
      0
  in
  Printf.printf "  worker -> checksum via callgate: %d\n" (W.sthread_join main handle);
  print_endline "quickstart done."
