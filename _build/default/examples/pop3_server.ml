(* The paper's §2 motivating example, live: a POP3 server partitioned as in
   Figure 1, attacked through its command parser, side by side with the
   monolithic server falling to the same exploit.

   Run with:  dune exec examples/pop3_server.exe *)

module Kernel = Wedge_kernel.Kernel
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Attacker = Wedge_net.Attacker
module W = Wedge_core.Wedge
module Env = Wedge_pop3.Pop3_env
module Mono = Wedge_pop3.Pop3_mono
module Wedge_pop = Wedge_pop3.Pop3_wedge
module Client = Wedge_pop3.Pop3_client

let payload loot ctx =
  (match W.vfs_read ctx Env.passwd_path with
  | Ok data -> Attacker.grab loot ~label:"password database" data
  | Error _ -> ());
  match W.vfs_read ctx (Env.maildir "bob" ^ "/1.eml") with
  | Ok data -> Attacker.grab loot ~label:"bob's mail" data
  | Error _ -> ()

let session name serve =
  Printf.printf "== %s ==\n" name;
  let k = Kernel.create () in
  Env.install k Env.default_users;
  let app = W.create_app k in
  W.boot app;
  let main = W.main_ctx app in
  let loot = Attacker.loot_create () in
  Fiber.run (fun () ->
      let client_ep, server_ep = Chan.pair () in
      Fiber.spawn (fun () -> serve main loot server_ep);
      let c = Client.connect client_ep in
      Printf.printf "  alice logs in: %b\n" (Client.login c ~user:"alice" ~password:"wonderland");
      (match Client.retr c 1 with
      | Some mail -> Printf.printf "  alice reads her mail (%d bytes)\n" (String.length mail)
      | None -> print_endline "  RETR failed");
      print_endline "  attacker sends the exploit trigger...";
      Client.xploit c;
      Client.quit c;
      Chan.close client_ep);
  (match Attacker.labels loot with
  | [] -> print_endline "  attacker stole: nothing"
  | stolen -> List.iter (fun l -> Printf.printf "  attacker stole: %s\n" l) stolen);
  print_newline ()

let () =
  session "monolithic POP3 server" (fun main loot ep ->
      Mono.serve_connection ~exploit:(payload loot) main ep);
  session "Wedge-partitioned POP3 server (Figure 1)" (fun main loot ep ->
      ignore (Wedge_pop.serve_connection ~exploit:(payload loot) main ep));
  print_endline "Same exploit, same parser: the partitioned server leaks nothing."
