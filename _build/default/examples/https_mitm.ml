(* The paper's headline experiment (§5.1.2): a man-in-the-middle passively
   forwards a legitimate client's SSL handshake while an exploit runs in
   the server's network-facing compartment.

   Against the Figure 2 partitioning the worker holds the session key, so
   the exploit leaks it and the attacker decrypts the captured traffic.
   Against the Figures 3-5 partitioning the handshake sthread holds no key
   material at all, and the attack collapses.

   Run with:  dune exec examples/https_mitm.exe *)

module Kernel = Wedge_kernel.Kernel
module Fiber = Wedge_sim.Fiber
module Chan = Wedge_net.Chan
module Mitm = Wedge_net.Mitm
module Attacker = Wedge_net.Attacker
module Tag = Wedge_mem.Tag
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Wire = Wedge_tls.Wire
module Record = Wedge_tls.Record
module W = Wedge_core.Wedge
module Env = Wedge_httpd.Httpd_env
module Simple = Wedge_httpd.Httpd_simple
module Mitm_httpd = Wedge_httpd.Httpd_mitm
module Client = Wedge_httpd.Https_client

(* The exploit payload: dump every tag segment the compartment can read. *)
let dump_readable_tags loot ctx =
  List.iter
    (fun (tag : Tag.t) ->
      ignore (Attacker.steal_tag ctx loot ~label:tag.Tag.name tag))
    (W.live_tags (W.app_of ctx))

(* Offline: hunt the loot for a serialised record-key state and replay the
   captured server->client records through it. *)
let try_decrypt loot capture =
  let candidates = ref [] in
  List.iter
    (fun label ->
      match Attacker.stolen loot ~label with
      | None -> ()
      | Some data ->
          let n = String.length data in
          let rec scan i =
            if i + 4 + Record.state_size <= n then begin
              let len =
                Char.code data.[i] lor (Char.code data.[i+1] lsl 8)
                lor (Char.code data.[i+2] lsl 16) lor (Char.code data.[i+3] lsl 24)
              in
              if len = Record.state_size then
                candidates := Bytes.of_string (String.sub data (i + 4) len) :: !candidates;
              scan (i + 1)
            end
          in
          scan 0)
    (Attacker.labels loot);
  let swap b =
    Record.of_bytes
      (Bytes.concat Bytes.empty
         [ Bytes.sub b 32 32; Bytes.sub b 0 32; Bytes.sub b (64+258) 258;
           Bytes.sub b 64 258; Bytes.sub b (64+524) 8; Bytes.sub b (64+516) 8 ])
  in
  List.concat_map
    (fun ks ->
      let keys = swap ks in
      Wire.parse_frames capture
      |> List.filter_map (fun (t, record) ->
             if t = Wire.App_data || t = Wire.Finished then
               match Record.open_ keys record with
               | Some pt when t = Wire.App_data -> Some (Bytes.to_string pt)
               | _ -> None
             else None))
    !candidates

let attack name serve =
  Printf.printf "== man-in-the-middle + exploit vs %s ==\n" name;
  let k = Kernel.create () in
  let env = Env.install k in
  let mitm = Mitm.create () in
  let loot = Attacker.loot_create () in
  Fiber.run (fun () ->
      let client_ep, mitm_client = Chan.pair () in
      let mitm_server, server_ep = Chan.pair () in
      Mitm.splice mitm ~client_side:mitm_client ~server_side:mitm_server;
      Fiber.spawn (fun () -> serve env (dump_readable_tags loot) server_ep);
      let r =
        Client.get ~rng:(Drbg.create ~seed:7) ~pinned:env.Env.priv.Rsa.pub
          ~path:"/index.html" client_ep
      in
      match r.Client.response with
      | Some { Wedge_httpd.Http.status; body } ->
          Printf.printf "  legitimate client: HTTP %d, %d bytes (MITM was passive)\n" status
            (String.length body)
      | None -> print_endline "  legitimate client failed");
  Printf.printf "  exploit leaked %d readable region(s): %s\n" (Attacker.count loot)
    (String.concat ", " (Attacker.labels loot));
  (match try_decrypt loot (Mitm.captured mitm Mitm.Server_to_client) with
  | [] -> print_endline "  attacker decrypts captured traffic: FAILED - no key material leaked"
  | pts ->
      List.iter
        (fun pt ->
          Printf.printf "  attacker DECRYPTED the captured response: %S...\n"
            (String.sub pt 0 (min 40 (String.length pt))))
        pts);
  print_newline ()

let () =
  attack "the simple partitioning (Figure 2)" (fun env payload ep ->
      ignore (Simple.serve_connection ~exploit_handshake:payload env ep));
  attack "the MITM partitioning (Figures 3-5)" (fun env payload ep ->
      ignore (Mitm_httpd.serve_connection ~exploit_handshake:payload env ep));
  print_endline
    "The finer partitioning denies the network-facing compartment both the session\n\
     key and any encryption/decryption oracle for it - the attacker ends up outside\n\
     the protected channel (paper, end of 5.1.2)."
