(* Chaos demo: the Figure 2 httpd under a seeded fault plan.

   Twenty connections are driven through a listener whose channels drop,
   truncate, reset and delay at a 5% per-operation rate, while frame
   allocation occasionally fails with ENOMEM.  Crashed workers degrade to
   a plaintext 500; the listener survives every one of them.  The fault
   trace at the end is a pure function of the seed — rerun the demo and
   you get the same chaos, byte for byte.

   Run with:  dune exec examples/chaos_demo.exe *)

module Fault_plan = Wedge_fault.Fault_plan
module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Fiber = Wedge_sim.Fiber
module Stats = Wedge_sim.Stats
module Chan = Wedge_net.Chan
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Env = Wedge_httpd.Httpd_env
module Simple = Wedge_httpd.Httpd_simple
module Client = Wedge_httpd.Https_client
module Http = Wedge_httpd.Http

let connections = 20
let seed = 2008

let () =
  Printf.printf "Chaos demo: %d connections, 5%% fault rate, seed %d\n\n" connections seed;
  let plan = Fault_plan.create ~seed () in
  let chan_kinds =
    [ Fault_plan.Drop; Fault_plan.Truncate; Fault_plan.Reset; Fault_plan.Delay 50 ]
  in
  Fault_plan.rule plan ~site:"chan.read" ~prob:0.05 chan_kinds;
  Fault_plan.rule plan ~site:"chan.write" ~prob:0.05 chan_kinds;
  Fault_plan.rule plan ~site:"physmem.alloc" ~prob:0.05 [ Fault_plan.Enomem ];
  Fault_plan.disarm plan;
  let k = Kernel.create ~costs:Cost_model.free ~faults:plan () in
  let env = Env.install ~image_pages:80 k in
  let served = ref 0 and degraded = ref 0 in
  Fiber.run (fun () ->
      let l = Chan.listener ~clock:k.Kernel.clock ~costs:Cost_model.free ~faults:plan () in
      Fiber.spawn (fun () ->
          let rec loop () =
            match Chan.accept l with
            | None -> ()
            | Some ep ->
                ignore (Simple.serve_connection env ep);
                loop ()
          in
          loop ());
      Fault_plan.arm plan;
      for i = 1 to connections do
        match Chan.connect l with
        | exception Fault_plan.Injected msg ->
            incr degraded;
            Printf.printf "  conn %2d: refused (%s)\n" i msg
        | ep -> (
            let rng = Drbg.create ~seed:(100 + i) in
            let outcome =
              try
                match
                  (Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" ep)
                    .Client.response
                with
                | Some { Http.status = 200; _ } -> `Served
                | Some { Http.status; _ } -> `Status status
                | None -> `Dead
              with _ -> `Dead
            in
            match outcome with
            | `Served ->
                incr served;
                Printf.printf "  conn %2d: 200 OK\n" i
            | `Status s ->
                incr degraded;
                Printf.printf "  conn %2d: degraded (%d)\n" i s
            | `Dead ->
                incr degraded;
                Printf.printf "  conn %2d: connection died\n" i)
      done;
      Fault_plan.disarm plan;
      (* Proof of life: the listener still serves a clean connection. *)
      let ep = Chan.connect l in
      let rng = Drbg.create ~seed:999 in
      let r = Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" ep in
      (match r.Client.response with
      | Some { Http.status = 200; _ } ->
          print_endline "\n  listener alive: clean fetch after the chaos -> 200 OK"
      | _ ->
          print_endline "\n  !!! listener did not survive (bug)";
          exit 1);
      Chan.shutdown l);
  Printf.printf "\n%d served, %d degraded, %d faults injected\n" !served !degraded
    (Fault_plan.injections plan);
  print_endline "\nCounters:";
  List.iter
    (fun (name, v) ->
      if
        List.exists
          (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
          [ "fault."; "supervisor."; "httpd.degraded"; "cgate." ]
      then Printf.printf "  %-28s %d\n" name v)
    (List.sort compare (Stats.to_list k.Kernel.stats));
  print_endline "\nFault trace (deterministic for this seed):";
  String.split_on_char '\n' (Fault_plan.trace plan)
  |> List.filteri (fun i s -> i < 8 && s <> "")
  |> List.iter (fun line -> Printf.printf "  %s\n" line)
