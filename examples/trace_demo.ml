(* Trace demo: 100 HTTPS connections through the Figure 2 httpd with the
   observability layer armed.

   The kernel's trace records every syscall trap, compartment span,
   channel transfer and admission decision; the metrics registry reads
   every counter in the system through one snapshot.  Because time is
   simulated, running the identical workload twice produces the same
   Chrome-trace JSON byte for byte — asserted below, and the property the
   CI smoke gate leans on.

   Run with:  dune exec examples/trace_demo.exe
   Load the printed JSON shape in chrome://tracing via
   `dune exec bin/wedge_cli.exe -- trace httpd`. *)

module Kernel = Wedge_kernel.Kernel
module Cost_model = Wedge_sim.Cost_model
module Fiber = Wedge_sim.Fiber
module Trace = Wedge_sim.Trace
module Metrics = Wedge_sim.Metrics
module Chan = Wedge_net.Chan
module Guard = Wedge_net.Guard
module Drbg = Wedge_crypto.Drbg
module Rsa = Wedge_crypto.Rsa
module Env = Wedge_httpd.Httpd_env
module Simple = Wedge_httpd.Httpd_simple
module Client = Wedge_httpd.Https_client
module Http = Wedge_httpd.Http
module W = Wedge_core.Wedge

let connections = 100

type outcome = { served : int; other : int; json : string; metrics : string }

let run () =
  let k = Kernel.create ~costs:Cost_model.default () in
  Trace.arm ~capacity:(1 lsl 18) k.Kernel.trace;
  let env = Env.install ~image_pages:80 k in
  let m = Metrics.create () in
  W.register_metrics m env.Env.app;
  let guard = Guard.create ~clock:k.Kernel.clock ~max_conns:16 ~trace:k.Kernel.trace () in
  Guard.register_metrics m guard;
  let served = ref 0 and other = ref 0 in
  Fiber.run (fun () ->
      let l =
        Chan.listener ~clock:k.Kernel.clock ~costs:Cost_model.default
          ~trace:k.Kernel.trace ()
      in
      Chan.register_metrics m l;
      Fiber.spawn (fun () ->
          Guard.accept_loop guard l
            ~reject:(fun _ ep -> Chan.close ep)
            ~serve:(fun conn -> ignore (Simple.serve_connection env (Guard.ep conn))));
      let resolved = ref 0 in
      for i = 1 to connections do
        Fiber.spawn (fun () ->
            (* Keep at most 12 clients in flight: under the 16-slot guard,
               so the steady state exercises admission without mass
               rejection (the drain at the end still traces both paths). *)
            Fiber.wait_until ~what:"client window open" (fun () -> !resolved >= i - 12);
            (match Chan.connect l with
            | exception Chan.Refused _ -> incr other
            | ep -> (
                let rng = Drbg.create ~seed:(1000 + i) in
                match
                  (Client.get ~rng ~pinned:env.Env.priv.Rsa.pub ~path:"/index.html" ep)
                    .Client.response
                with
                | Some { Http.status = 200; _ } -> incr served
                | Some _ | None -> incr other
                | exception _ -> incr other));
            incr resolved)
      done;
      Fiber.wait_until ~what:"all clients resolved" (fun () -> !resolved = connections);
      Guard.drain guard l);
  {
    served = !served;
    other = !other;
    json = Trace.to_chrome_json k.Kernel.trace;
    metrics = Metrics.to_json m;
  }

let () =
  Printf.printf "Trace demo: %d HTTPS connections with tracing armed\n\n" connections;
  let a = run () in
  Printf.printf "  served: %d   degraded/refused: %d\n" a.served a.other;
  Printf.printf "  trace export: %d bytes of Chrome JSON\n" (String.length a.json);
  (match Trace.validate_chrome_json a.json with
  | Ok () -> print_endline "  schema: valid Chrome trace format"
  | Error e -> failwith ("trace export failed validation: " ^ e));
  (* Spot-check that the interesting layers all show up. *)
  let contains needle =
    let nl = String.length needle and hl = String.length a.json in
    let rec go i = i + nl <= hl && (String.sub a.json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name ->
      if not (contains ("\"" ^ name ^ "\"")) then
        failwith ("expected event missing from trace: " ^ name))
    [ "sthread"; "chan.connect"; "chan.accept"; "guard.admit"; "guard.drain" ];
  print_endline "  layers present: engine, channels, admission";
  (* The paper-grade property: identical seeds => identical artifacts. *)
  let b = run () in
  if not (String.equal a.json b.json) then failwith "trace export is nondeterministic";
  if not (String.equal a.metrics b.metrics) then failwith "metrics export is nondeterministic";
  print_endline "  determinism: second run byte-identical (trace + metrics)";
  Printf.printf "\nMetrics snapshot (%d bytes):\n  %s\n" (String.length a.metrics)
    (if String.length a.metrics > 300 then String.sub a.metrics 0 300 ^ "..."
     else a.metrics)
